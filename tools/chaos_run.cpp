// chaos-run: generates, replays, checks and shrinks chaos schedules.
//
//   chaos-run --sweep 30                      # 30 random schedules, all protocols
//   chaos-run --sweep 10 --protocol paxos --emit artifacts/
//   chaos-run --replay tests/corpus/idem_seed7.json
//   chaos-run --corpus tests/corpus           # replay every *.json
//   chaos-run --shrink failing.json           # minimize a failing schedule
//
// Every run is deterministic in its config: --replay re-executes the
// recorded config and verifies the stamped history hash bit for bit.
// Exit code 0 when everything passed, 1 on any failure, 2 on usage errors.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/chaos.hpp"
#include "harness/table.hpp"

using namespace idem;

namespace {

struct Options {
  std::size_t sweep = 0;
  std::string replay;
  std::string corpus;
  std::string shrink;
  std::string out;   ///< --replay/--shrink: write the (re-)stamped artifact here
  std::string emit;  ///< --sweep: directory for per-run artifacts
  std::optional<std::string> protocol;  ///< default: rotate idem/paxos/smart
  std::string app = "kv";
  std::uint64_t seed = 1;
  std::size_t clients = 4;
  std::size_t ops = 16;
  std::size_t keys = 3;
  std::size_t reject_threshold = 5;
  std::size_t rejected_cache = 0;  ///< 0 = protocol default
  std::size_t max_faults = 4;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s MODE [options]\n"
               "modes (exactly one):\n"
               "  --sweep N          run N randomly generated schedules\n"
               "  --replay FILE      re-run one artifact, verify its history hash\n"
               "  --corpus DIR       replay every *.json artifact in DIR\n"
               "  --shrink FILE      greedily minimize a failing artifact's plan\n"
               "options:\n"
               "  --protocol P       idem|idem-nopr|idem-noaqm|paxos|paxos-lbr|smart|smart-pr\n"
               "                     (sweep default: rotate idem, paxos, smart)\n"
               "  --app A            kv | counter                (default: kv)\n"
               "  --seed N           base seed                   (default: 1)\n"
               "  --clients N        workload clients            (default: 4)\n"
               "  --ops N            invokes per client          (default: 16)\n"
               "  --keys N           workload key-space size     (default: 3)\n"
               "  --rt N             reject threshold            (default: 5)\n"
               "  --rejected-cache N rejected-cache capacity      (default: protocol)\n"
               "  --max-faults N     schedule size cap           (default: 4)\n"
               "  --emit DIR         sweep: write artifact JSON per run into DIR\n"
               "  --out FILE         replay/shrink: write resulting artifact to FILE\n",
               argv0);
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* arg = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(arg, "--sweep")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.sweep = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--replay")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.replay = v;
    } else if (!std::strcmp(arg, "--corpus")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.corpus = v;
    } else if (!std::strcmp(arg, "--shrink")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.shrink = v;
    } else if (!std::strcmp(arg, "--out")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.out = v;
    } else if (!std::strcmp(arg, "--emit")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.emit = v;
    } else if (!std::strcmp(arg, "--protocol")) {
      if ((v = value()) == nullptr) return std::nullopt;
      if (!check::protocol_from_name(v)) return std::nullopt;
      options.protocol = v;
    } else if (!std::strcmp(arg, "--app")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.app = v;
    } else if (!std::strcmp(arg, "--seed")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--clients")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.clients = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--ops")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.ops = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--keys")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.keys = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--rt")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.reject_threshold = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--rejected-cache")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.rejected_cache = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--max-faults")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.max_faults = std::strtoul(v, nullptr, 10);
    } else {
      return std::nullopt;
    }
  }
  const int modes = (options.sweep > 0) + !options.replay.empty() + !options.corpus.empty() +
                    !options.shrink.empty();
  if (modes != 1) return std::nullopt;
  return options;
}

std::optional<json::Value> load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "chaos-run: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return json::Value::parse(buffer.str());
  } catch (const json::ParseError& e) {
    std::fprintf(stderr, "chaos-run: %s: %s\n", path.c_str(), e.what());
    return std::nullopt;
  }
}

bool write_json(const std::string& path, const json::Value& value) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "chaos-run: cannot write %s\n", path.c_str());
    return false;
  }
  out << value.dump() << "\n";
  return out.good();
}

check::ChaosConfig sweep_config(const Options& options, std::size_t i) {
  static const char* kRotation[] = {"idem", "paxos", "smart"};
  check::ChaosConfig config;
  config.protocol = options.protocol ? *options.protocol : kRotation[i % 3];
  config.app = options.app;
  config.seed = options.seed + i;
  config.clients = options.clients;
  config.ops_per_client = options.ops;
  config.keys = options.keys;
  config.reject_threshold = options.reject_threshold;
  config.rejected_cache = options.rejected_cache;

  check::PlanGenConfig gen;
  gen.max_faults = options.max_faults;
  gen.client_count = options.clients;
  // The SMaRt analog has no view change: replica 0 must stay up.
  gen.allow_leader_crash =
      config.protocol != "smart" && config.protocol != "smart-pr";
  config.plan = check::random_plan(config.seed, gen);
  return config;
}

int run_sweep(const Options& options) {
  harness::Table table(
      {"run", "protocol", "seed", "faults", "ok", "rej", "to", "open", "result"});
  std::size_t failures = 0;
  for (std::size_t i = 0; i < options.sweep; ++i) {
    check::ChaosConfig config = sweep_config(options, i);
    check::ChaosResult result = check::run_chaos(config);
    const bool passed = result.passed();
    failures += !passed;
    table.add_row({harness::Table::fmt(std::uint64_t(i)), config.protocol,
                   harness::Table::fmt(config.seed),
                   harness::Table::fmt(std::uint64_t(config.plan.size())),
                   harness::Table::fmt(std::uint64_t(result.ok)),
                   harness::Table::fmt(std::uint64_t(result.rejected)),
                   harness::Table::fmt(std::uint64_t(result.timeouts)),
                   harness::Table::fmt(std::uint64_t(result.open)),
                   passed ? "pass" : "FAIL"});
    if (!passed) {
      std::fprintf(stderr, "run %zu (%s seed %llu) FAILED:\n  %s\n", i,
                   config.protocol.c_str(), static_cast<unsigned long long>(config.seed),
                   (result.check.linearizable ? result.exec_error : result.check.error).c_str());
    }
    if (!options.emit.empty()) {
      std::filesystem::create_directories(options.emit);
      std::ostringstream name;
      name << config.protocol << "_" << config.app << "_seed" << config.seed << ".json";
      write_json((std::filesystem::path(options.emit) / name.str()).string(),
                 check::make_artifact(config, result));
    }
  }
  table.print();
  std::printf("%zu/%zu schedules passed\n", options.sweep - failures, options.sweep);
  return failures == 0 ? 0 : 1;
}

int run_replay(const std::string& path, const std::string& out) {
  auto artifact = load_json(path);
  if (!artifact) return 1;
  check::ReplayResult replay = check::replay_artifact(*artifact);
  const check::ChaosResult& result = replay.result;
  std::printf("%s: ok=%zu rejected=%zu timeouts=%zu open=%zu states=%zu -> %s\n", path.c_str(),
              result.ok, result.rejected, result.timeouts, result.open,
              result.check.states_explored, replay.passed() ? "pass" : "FAIL");
  if (!replay.passed()) std::fprintf(stderr, "  %s\n", replay.error.c_str());
  if (!out.empty()) {
    check::ChaosConfig config = check::ChaosConfig::from_json(
        artifact->contains("config") ? artifact->at("config") : *artifact);
    if (!write_json(out, check::make_artifact(config, result))) return 1;
  }
  return replay.passed() ? 0 : 1;
}

int run_corpus(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path().string());
  }
  if (ec) {
    std::fprintf(stderr, "chaos-run: cannot list %s: %s\n", dir.c_str(), ec.message().c_str());
    return 1;
  }
  if (files.empty()) {
    std::fprintf(stderr, "chaos-run: no *.json artifacts in %s\n", dir.c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());
  int rc = 0;
  for (const std::string& file : files) rc |= run_replay(file, "");
  return rc;
}

int run_shrink(const std::string& path, const std::string& out) {
  auto artifact = load_json(path);
  if (!artifact) return 1;
  check::ChaosConfig config = check::ChaosConfig::from_json(
      artifact->contains("config") ? artifact->at("config") : *artifact);

  auto still_fails = [&](const sim::FaultPlan& plan) {
    check::ChaosConfig candidate = config;
    candidate.plan = plan;
    return !check::run_chaos(candidate).passed();
  };
  if (!still_fails(config.plan)) {
    std::fprintf(stderr, "chaos-run: %s does not fail — nothing to shrink\n", path.c_str());
    return 1;
  }
  const std::size_t before = config.plan.size();
  config.plan = check::shrink_plan(config.plan, still_fails);
  std::printf("shrunk %zu -> %zu faults\n", before, config.plan.size());

  check::ChaosResult result = check::run_chaos(config);
  const std::string target = out.empty() ? path + ".shrunk.json" : out;
  if (!write_json(target, check::make_artifact(config, result))) return 1;
  std::printf("wrote %s\n", target.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = parse_args(argc, argv);
  if (!options) {
    usage(argv[0]);
    return 2;
  }
  if (options->sweep > 0) return run_sweep(*options);
  if (!options->replay.empty()) return run_replay(options->replay, options->out);
  if (!options->corpus.empty()) return run_corpus(options->corpus);
  return run_shrink(options->shrink, options->out);
}
