// storm-client: connection-storm load driver for a live IDEM cluster —
// thousands of sessions multiplexed on one epoll thread (real::StormEngine)
// instead of idem_client's one-full-client-per-session model.
//
//   storm_client --replica :7000 --replica :7001 --replica :7002
//                --sessions 5000 --ramp 5 --seconds 20
//
// Replicas must be listed in replica-id order. Closed-loop by default;
// --rate R switches each session to open-loop Poisson arrivals. Storm
// behaviors compose: --flash N --flash-after S jumps the population to N
// sessions after S seconds; --stampede-after S tears every connection
// down at S seconds (all sessions reconnect with jittered delays);
// --loris-fraction F makes that slice of sessions trickle a forever-
// unfinished frame (what a server's half-open timeout evicts).
//
// Prints one line per second (connections, replies/s, rejects/s,
// rejection-notification p99.9) and a final summary. Exit code 0 when at
// least one REPLY arrived, 1 when none did, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "real/storm.hpp"

using namespace idem;

namespace {

struct Options {
  real::StormOptions storm;
  double seconds = 10.0;
  double ramp_seconds = 0;
  std::size_t flash_sessions = 0;
  double flash_after = 0;
  double stampede_after = 0;
  double loris_trickle_ms = 500;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --replica [HOST:]PORT [--replica ...] [options]\n"
      "  --replica ADDR       replica address, repeated in replica-id order\n"
      "  --sessions N         concurrent sessions            (default: 100)\n"
      "  --client-id-base B   first client id, keep ranges disjoint across\n"
      "                       concurrent drivers             (default: %llu)\n"
      "  --seconds S          run length in seconds          (default: 10)\n"
      "  --ramp S             spread the initial spawns over S seconds\n"
      "  --rate R             open-loop arrivals per session per second\n"
      "                       (default: 0 = closed loop)\n"
      "  --seed N             rng seed                       (default: 1)\n"
      "  --f F                tolerated faults               (default: (n-1)/2)\n"
      "  --records N          YCSB key-space size            (default: 10000)\n"
      "  --value-size B       YCSB value bytes               (default: 100)\n"
      "  --reconnect-every N  churn: reconnect a session after N completed\n"
      "                       operations                     (default: 0 = never)\n"
      "  --flash N            flash crowd: grow to N sessions mid-run\n"
      "  --flash-after S      ...after S seconds             (default: seconds/2)\n"
      "  --stampede-after S   tear every connection down at S seconds\n"
      "  --loris-fraction F   fraction of sessions in slow-loris mode\n"
      "  --loris-trickle MS   loris byte interval in ms      (default: 500)\n",
      argv0, static_cast<unsigned long long>(real::StormOptions{}.client_id_base));
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* { return cli::next_value(argc, argv, i); };
    const char* arg = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      usage(argv[0]);
      std::exit(0);
    } else if (!std::strcmp(arg, "--replica")) {
      if ((v = value()) == nullptr) return std::nullopt;
      auto address = cli::parse_replica(argv[0], v);
      if (!address.has_value()) return std::nullopt;
      options.storm.replicas.push_back(*address);
    } else if (!std::strcmp(arg, "--sessions")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.storm.sessions = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--client-id-base")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.storm.client_id_base = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--seconds")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.seconds = std::atof(v);
    } else if (!std::strcmp(arg, "--ramp")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.ramp_seconds = std::atof(v);
    } else if (!std::strcmp(arg, "--rate")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.storm.issue_rate = std::atof(v);
    } else if (!std::strcmp(arg, "--seed")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.storm.seed = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--f")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.storm.f = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--records")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.storm.workload.record_count = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--value-size")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.storm.workload.value_size = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--reconnect-every")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.storm.reconnect_every_ops = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--flash")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.flash_sessions = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--flash-after")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.flash_after = std::atof(v);
    } else if (!std::strcmp(arg, "--stampede-after")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.stampede_after = std::atof(v);
    } else if (!std::strcmp(arg, "--loris-fraction")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.storm.slow_loris_fraction = std::atof(v);
    } else if (!std::strcmp(arg, "--loris-trickle")) {
      if ((v = value()) == nullptr) return std::nullopt;
      options.loris_trickle_ms = std::atof(v);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], arg);
      return std::nullopt;
    }
  }
  if (options.storm.replicas.empty()) return std::nullopt;
  if (options.flash_sessions > 0 && options.flash_after <= 0) {
    options.flash_after = options.seconds / 2;
  }
  options.storm.ramp = static_cast<Duration>(options.ramp_seconds * kSecond);
  options.storm.loris_trickle = static_cast<Duration>(options.loris_trickle_ms * kMillisecond);
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<Options> parsed = parse_args(argc, argv);
  if (!parsed.has_value()) {
    usage(argv[0]);
    return 2;
  }
  Options& options = *parsed;
  // 3 fds per normal session (one per replica); leave slack for the loop.
  real::StormEngine::raise_fd_limit(options.storm.sessions * 3 + 1024);

  real::StormEngine storm(options.storm);
  storm.start();

  std::printf("%8s %8s %8s %10s %10s %10s %12s\n", "t[s]", "sessions", "conns",
              "replies/s", "rejects/s", "timeouts", "rej p99.9[ms]");
  std::uint64_t total_replies = 0;
  std::uint64_t total_rejects = 0;
  std::uint64_t total_timeouts = 0;
  bool flashed = false;
  bool stampeded = false;
  const int ticks = static_cast<int>(options.seconds + 0.5);
  for (int t = 0; t < ticks; ++t) {
    storm.reset_window();
    storm.run_for(kSecond);
    const real::StormWindow& w = storm.window();
    real::StormGauges g = storm.gauges();
    total_replies += w.replies;
    total_rejects += w.rejects;
    total_timeouts += w.timeouts;
    std::printf("%8d %8zu %8zu %10llu %10llu %10llu %12.3f\n", t + 1, g.sessions,
                g.open_connections, static_cast<unsigned long long>(w.replies),
                static_cast<unsigned long long>(w.rejects),
                static_cast<unsigned long long>(w.timeouts),
                w.rejects > 0 ? to_ms(w.reject_latency.p999()) : 0.0);
    std::fflush(stdout);
    if (options.flash_sessions > 0 && !flashed && t + 1 >= options.flash_after) {
      std::printf("-- flash crowd: %zu -> %zu sessions --\n", g.sessions,
                  options.flash_sessions);
      storm.set_target_sessions(options.flash_sessions);
      flashed = true;
    }
    if (options.stampede_after > 0 && !stampeded && t + 1 >= options.stampede_after) {
      std::printf("-- stampede: reconnecting every session --\n");
      storm.reconnect_all();
      stampeded = true;
    }
  }

  std::printf("\ntotal: %llu replies, %llu rejects, %llu timeouts over %ds\n",
              static_cast<unsigned long long>(total_replies),
              static_cast<unsigned long long>(total_rejects),
              static_cast<unsigned long long>(total_timeouts), ticks);
  return total_replies > 0 ? 0 : 1;
}
