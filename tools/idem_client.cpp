// idem-client: wall-clock YCSB load generator for a live IDEM cluster
// (idem_server processes, or anything speaking the rpc framing).
//
//   idem_client --replica :7000 --replica :7001 --replica :7002
//               --clients 8 --seconds 5
//
// Replicas must be listed in replica-id order. Closed-loop by default;
// --rate R switches to open-loop Poisson arrivals (R ops/s per client).
//
// Against a sharded deployment, --shards M splits the --replica list into
// M equal contiguous groups (group 0 first) and every logical client
// becomes a ShardRouter: keys route by hash against the shard map
// (uniform over M groups unless --map-file supplies one) and WrongShard
// rejects are followed transparently, so a stale map costs a redirect
// hop, not an error.
//
// Prints throughput, latency percentiles and rejection counts; exit code
// 0 when at least one operation succeeded, 1 when none did, 2 on usage
// errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "obs/chrome_trace.hpp"
#include "real/load.hpp"
#include "shard/load.hpp"
#include "shard/shard_map.hpp"

using namespace idem;

namespace {

struct Options {
  std::vector<rpc::PeerAddress> replicas;
  std::size_t clients = 4;
  std::uint64_t client_id_base = 0;
  double seconds = 5.0;
  double warmup = 0.5;
  double rate = 0;  ///< per-client open-loop ops/s; 0 = closed loop
  std::uint64_t seed = 1;
  std::size_t f = 0;  ///< 0 = derive (n-1)/2
  std::uint64_t records = 10'000;
  std::size_t value_size = 100;
  std::string workload = "a";
  std::string trace_out;
  std::size_t shards = 0;  ///< 0 = unsharded
  std::string map_file;
  /// Closed-loop rejection backoff window in ms (paper Section 7.1);
  /// backoff_max_ms = 0 disables the wait entirely.
  double backoff_min_ms = 50;
  double backoff_max_ms = 100;
  /// Per-operation latency budget in ms (0 = none) and uniform +/- jitter.
  double deadline_ms = 0;
  double deadline_jitter_ms = 0;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --replica [HOST:]PORT [--replica ...] [options]\n"
      "  --replica ADDR     replica address, repeated in replica-id order\n"
      "                     (with --shards: group 0's replicas, then group 1's, ...)\n"
      "  --clients N        concurrent clients            (default: 4)\n"
      "  --client-id-base B first client id, keep ranges disjoint across\n"
      "                     concurrent generators         (default: 0)\n"
      "  --seconds S        measured seconds              (default: 5)\n"
      "  --warmup S         warm-up seconds               (default: 0.5)\n"
      "  --rate R           open-loop arrivals per client per second\n"
      "                     (default: 0 = closed loop)\n"
      "  --seed N           rng seed                      (default: 1)\n"
      "  --f F              tolerated faults              (default: (n-1)/2)\n"
      "  --records N        YCSB key-space size           (default: 10000)\n"
      "  --value-size B     YCSB value bytes              (default: 100)\n"
      "  --workload W       a | b | c                     (default: a)\n"
      "  --shards M         route across M replication groups; the --replica\n"
      "                     list is split into M equal contiguous groups\n"
      "  --map-file F       initial shard map JSON (see idem_server --shard-map;\n"
      "                     default: uniform hash ranges over M groups)\n"
      "  --deadline-ms MS   latency budget stamped on every operation; the\n"
      "                     cluster may reject budgets it cannot meet, and\n"
      "                     late replies are counted as deadline misses\n"
      "  --deadline-jitter MS\n"
      "                     uniform +/- jitter on each operation's budget\n"
      "  --backoff-min MS   closed-loop wait after a reject/timeout,\n"
      "                     lower bound in ms             (default: 50)\n"
      "  --backoff-max MS   upper bound in ms; 0 disables (default: 100)\n"
      "  --trace-out F      write client-side Chrome/Perfetto trace to F\n"
      "                     (unsharded runs only)\n",
      argv0);
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      usage(argv[0]);
      std::exit(0);
    } else if (!std::strcmp(arg, "--replica")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      auto address = cli::parse_replica(argv[0], v);
      if (!address.has_value()) return std::nullopt;
      options.replicas.push_back(*address);
    } else if (!std::strcmp(arg, "--clients")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.clients = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--client-id-base")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.client_id_base = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--seconds")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.seconds = std::atof(v);
    } else if (!std::strcmp(arg, "--warmup")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.warmup = std::atof(v);
    } else if (!std::strcmp(arg, "--rate")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.rate = std::atof(v);
    } else if (!std::strcmp(arg, "--seed")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--f")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.f = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--records")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.records = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--value-size")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.value_size = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--workload")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.workload = v;
    } else if (!std::strcmp(arg, "--shards")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.shards = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--map-file")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.map_file = v;
    } else if (!std::strcmp(arg, "--deadline-ms")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.deadline_ms = std::atof(v);
    } else if (!std::strcmp(arg, "--deadline-jitter")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.deadline_jitter_ms = std::atof(v);
    } else if (!std::strcmp(arg, "--backoff-min")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.backoff_min_ms = std::atof(v);
    } else if (!std::strcmp(arg, "--backoff-max")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.backoff_max_ms = std::atof(v);
    } else if (!std::strcmp(arg, "--trace-out")) {
      if ((v = cli::next_value(argc, argv, i)) == nullptr) return std::nullopt;
      options.trace_out = v;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg);
      return std::nullopt;
    }
  }
  if (options.replicas.empty()) {
    if (argc > 1) std::fprintf(stderr, "%s: at least one --replica is required\n", argv[0]);
    return std::nullopt;
  }
  return options;
}

int run_sharded(const Options& options, const app::YcsbConfig& workload) {
  if (options.replicas.size() % options.shards != 0) {
    std::fprintf(stderr,
                 "idem_client: %zu replicas do not split into %zu equal groups\n",
                 options.replicas.size(), options.shards);
    return 2;
  }
  if (!options.trace_out.empty()) {
    std::fprintf(stderr, "idem_client: --trace-out is not supported with --shards\n");
    return 2;
  }
  const std::size_t n = options.replicas.size() / options.shards;

  shard::ShardedLoadOptions load;
  for (std::size_t g = 0; g < options.shards; ++g) {
    load.groups.emplace_back(options.replicas.begin() + g * n,
                             options.replicas.begin() + (g + 1) * n);
  }
  load.map = shard::ShardMap::uniform(options.shards);
  if (!options.map_file.empty()) {
    auto text = cli::read_file("idem_client", options.map_file);
    if (!text.has_value()) return 2;
    try {
      load.map = shard::ShardMap::parse(*text);
    } catch (const json::ParseError& e) {
      std::fprintf(stderr, "idem_client: bad shard map %s: %s\n",
                   options.map_file.c_str(), e.what());
      return 2;
    }
    if (load.map.group_count() > options.shards) {
      std::fprintf(stderr, "idem_client: map references group %zu but only %zu groups given\n",
                   load.map.group_count() - 1, options.shards);
      return 2;
    }
  }

  load.clients = options.clients;
  load.client_id_base = options.client_id_base;
  load.warmup = static_cast<Duration>(options.warmup * kSecond);
  load.duration = static_cast<Duration>(options.seconds * kSecond);
  load.open_loop_rate = options.rate;
  load.seed = options.seed;
  load.client.n = n;
  load.client.f = options.f != 0 ? options.f : (n - 1) / 2;
  load.workload = workload;
  load.backoff_min = static_cast<Duration>(options.backoff_min_ms * kMillisecond);
  load.backoff_max = static_cast<Duration>(options.backoff_max_ms * kMillisecond);

  std::printf("idem_client: %zu %s clients -> %zu groups x %zu replicas"
              " (map epoch %llu), %.1f s (+%.1f s warmup)\n",
              options.clients, options.rate > 0 ? "open-loop" : "closed-loop",
              options.shards, n,
              static_cast<unsigned long long>(load.map.epoch()), options.seconds,
              options.warmup);
  std::fflush(stdout);

  const shard::ShardedLoadStats stats = shard::run_sharded_load(load);
  cli::print_load_report(stats.load);
  std::printf("  routing    : %llu redirects, %llu map refreshes, %llu dropped"
              " at the hop budget\n",
              static_cast<unsigned long long>(stats.router.redirects),
              static_cast<unsigned long long>(stats.router.map_refreshes),
              static_cast<unsigned long long>(stats.router.redirect_drops));
  return stats.load.replies > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = parse_args(argc, argv);
  if (!parsed.has_value()) {
    usage(argv[0]);
    return 2;
  }
  const Options& options = *parsed;

  auto workload = cli::workload_by_name(options.workload);
  if (!workload.has_value()) {
    std::fprintf(stderr, "%s: unknown workload '%s'\n", argv[0], options.workload.c_str());
    usage(argv[0]);
    return 2;
  }
  workload->record_count = options.records;
  workload->value_size = options.value_size;

  if (options.map_file.empty() == false && options.shards == 0) {
    std::fprintf(stderr, "%s: --map-file requires --shards\n", argv[0]);
    return 2;
  }
  if (options.shards > 0) {
    if (options.deadline_ms > 0) {
      std::fprintf(stderr, "%s: --deadline-ms is not supported with --shards\n", argv[0]);
      return 2;
    }
    return run_sharded(options, *workload);
  }

  real::LoadOptions load;
  load.clients = options.clients;
  load.client_id_base = options.client_id_base;
  load.warmup = static_cast<Duration>(options.warmup * kSecond);
  load.duration = static_cast<Duration>(options.seconds * kSecond);
  load.open_loop_rate = options.rate;
  load.seed = options.seed;
  load.replicas = options.replicas;
  load.client.n = options.replicas.size();
  load.client.f = options.f != 0 ? options.f : (options.replicas.size() - 1) / 2;
  load.workload = *workload;
  load.backoff_min = static_cast<Duration>(options.backoff_min_ms * kMillisecond);
  load.backoff_max = static_cast<Duration>(options.backoff_max_ms * kMillisecond);
  load.request_deadline = static_cast<Duration>(options.deadline_ms * kMillisecond);
  load.deadline_jitter = static_cast<Duration>(options.deadline_jitter_ms * kMillisecond);
  load.trace = !options.trace_out.empty();

  std::printf("idem_client: %zu %s clients -> %zu replicas, %.1f s (+%.1f s warmup)\n",
              options.clients, options.rate > 0 ? "open-loop" : "closed-loop",
              options.replicas.size(), options.seconds, options.warmup);
  std::fflush(stdout);

  real::LoadStats stats = real::run_load(load);
  cli::print_load_report(stats);

  if (!options.trace_out.empty()) {
    if (std::FILE* f = std::fopen(options.trace_out.c_str(), "w")) {
      // The anchor lets trace_merge stitch this export onto the same
      // wall-clock timeline as the servers' --trace-out documents.
      obs::ChromeTraceMeta meta{"idem_client c" + std::to_string(options.client_id_base),
                                rpc::realtime_anchor_ns(load.epoch)};
      obs::write_chrome_trace(f, stats.trace, meta);
      std::fclose(f);
      std::printf("  trace      : wrote %s (%zu events)\n", options.trace_out.c_str(),
                  stats.trace.size());
    } else {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0], options.trace_out.c_str());
    }
  }
  return stats.replies > 0 ? 0 : 1;
}
