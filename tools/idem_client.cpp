// idem-client: wall-clock YCSB load generator for a live IDEM cluster
// (idem_server processes, or anything speaking the rpc framing).
//
//   idem_client --replica :7000 --replica :7001 --replica :7002 \
//               --clients 8 --seconds 5
//
// Replicas must be listed in replica-id order. Closed-loop by default;
// --rate R switches to open-loop Poisson arrivals (R ops/s per client).
// Prints throughput, latency percentiles and rejection counts; exit code
// 0 when at least one operation succeeded, 1 when none did, 2 on usage
// errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "real/load.hpp"

using namespace idem;

namespace {

struct Options {
  std::vector<rpc::PeerAddress> replicas;
  std::size_t clients = 4;
  std::uint64_t client_id_base = 0;
  double seconds = 5.0;
  double warmup = 0.5;
  double rate = 0;  ///< per-client open-loop ops/s; 0 = closed loop
  std::uint64_t seed = 1;
  std::size_t f = 0;  ///< 0 = derive (n-1)/2
  std::uint64_t records = 10'000;
  std::size_t value_size = 100;
  std::string workload = "a";
  std::string trace_out;
  /// Closed-loop rejection backoff window in ms (paper Section 7.1);
  /// backoff_max_ms = 0 disables the wait entirely.
  double backoff_min_ms = 50;
  double backoff_max_ms = 100;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --replica [HOST:]PORT [--replica ...] [options]\n"
      "  --replica ADDR     replica address, repeated in replica-id order\n"
      "  --clients N        concurrent clients            (default: 4)\n"
      "  --client-id-base B first client id, keep ranges disjoint across\n"
      "                     concurrent generators         (default: 0)\n"
      "  --seconds S        measured seconds              (default: 5)\n"
      "  --warmup S         warm-up seconds               (default: 0.5)\n"
      "  --rate R           open-loop arrivals per client per second\n"
      "                     (default: 0 = closed loop)\n"
      "  --seed N           rng seed                      (default: 1)\n"
      "  --f F              tolerated faults              (default: (n-1)/2)\n"
      "  --records N        YCSB key-space size           (default: 10000)\n"
      "  --value-size B     YCSB value bytes              (default: 100)\n"
      "  --workload W       a | b | c                     (default: a)\n"
      "  --backoff-min MS   closed-loop wait after a reject/timeout,\n"
      "                     lower bound in ms             (default: 50)\n"
      "  --backoff-max MS   upper bound in ms; 0 disables (default: 100)\n"
      "  --trace-out F      write client-side Chrome/Perfetto trace to F\n",
      argv0);
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      usage(argv[0]);
      std::exit(0);
    } else if (!std::strcmp(arg, "--replica")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      auto address = rpc::parse_address(v);
      if (!address.has_value()) {
        std::fprintf(stderr, "%s: bad --replica address '%s'\n", argv[0], v);
        return std::nullopt;
      }
      options.replicas.push_back(*address);
    } else if (!std::strcmp(arg, "--clients")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.clients = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--client-id-base")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.client_id_base = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--seconds")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.seconds = std::atof(v);
    } else if (!std::strcmp(arg, "--warmup")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.warmup = std::atof(v);
    } else if (!std::strcmp(arg, "--rate")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.rate = std::atof(v);
    } else if (!std::strcmp(arg, "--seed")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--f")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.f = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--records")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.records = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--value-size")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.value_size = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--workload")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.workload = v;
    } else if (!std::strcmp(arg, "--backoff-min")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.backoff_min_ms = std::atof(v);
    } else if (!std::strcmp(arg, "--backoff-max")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.backoff_max_ms = std::atof(v);
    } else if (!std::strcmp(arg, "--trace-out")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.trace_out = v;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg);
      return std::nullopt;
    }
  }
  if (options.replicas.empty()) {
    if (argc > 1) std::fprintf(stderr, "%s: at least one --replica is required\n", argv[0]);
    return std::nullopt;
  }
  return options;
}

std::optional<app::YcsbConfig> workload_by_name(const std::string& name) {
  if (name == "a") return app::YcsbConfig::update_heavy();
  if (name == "b") return app::YcsbConfig::read_heavy();
  if (name == "c") return app::YcsbConfig::read_only();
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = parse_args(argc, argv);
  if (!parsed.has_value()) {
    usage(argv[0]);
    return 2;
  }
  const Options& options = *parsed;

  auto workload = workload_by_name(options.workload);
  if (!workload.has_value()) {
    std::fprintf(stderr, "%s: unknown workload '%s'\n", argv[0], options.workload.c_str());
    usage(argv[0]);
    return 2;
  }

  real::LoadOptions load;
  load.clients = options.clients;
  load.client_id_base = options.client_id_base;
  load.warmup = static_cast<Duration>(options.warmup * kSecond);
  load.duration = static_cast<Duration>(options.seconds * kSecond);
  load.open_loop_rate = options.rate;
  load.seed = options.seed;
  load.replicas = options.replicas;
  load.client.n = options.replicas.size();
  load.client.f = options.f != 0 ? options.f : (options.replicas.size() - 1) / 2;
  load.workload = *workload;
  load.workload.record_count = options.records;
  load.workload.value_size = options.value_size;
  load.backoff_min = static_cast<Duration>(options.backoff_min_ms * kMillisecond);
  load.backoff_max = static_cast<Duration>(options.backoff_max_ms * kMillisecond);
  load.trace = !options.trace_out.empty();

  std::printf("idem_client: %zu %s clients -> %zu replicas, %.1f s (+%.1f s warmup)\n",
              options.clients, options.rate > 0 ? "open-loop" : "closed-loop",
              options.replicas.size(), options.seconds, options.warmup);
  std::fflush(stdout);

  real::LoadStats stats = real::run_load(load);

  std::printf("\n  throughput : %8.1f replies/s, %8.1f rejects/s\n",
              stats.reply_rate(), stats.reject_rate());
  std::printf("  outcomes   : %llu replies, %llu rejects, %llu timeouts"
              " (%llu issued, %llu malformed)\n",
              static_cast<unsigned long long>(stats.replies),
              static_cast<unsigned long long>(stats.rejects),
              static_cast<unsigned long long>(stats.timeouts),
              static_cast<unsigned long long>(stats.issued),
              static_cast<unsigned long long>(stats.malformed));
  if (stats.deferred > 0) {
    std::printf("  open loop  : %llu arrivals deferred behind a busy client\n",
                static_cast<unsigned long long>(stats.deferred));
  }
  if (stats.replies > 0) {
    std::printf("  latency    : p50 %.3f ms | p90 %.3f ms | p99 %.3f ms | p99.9 %.3f ms\n",
                to_ms(stats.reply_latency.p50()), to_ms(stats.reply_latency.p90()),
                to_ms(stats.reply_latency.p99()), to_ms(stats.reply_latency.p999()));
  }
  if (stats.rejects > 0) {
    std::printf("  rejections : p50 %.3f ms | p99 %.3f ms\n",
                to_ms(stats.reject_latency.p50()), to_ms(stats.reject_latency.p99()));
  }

  if (!options.trace_out.empty()) {
    if (std::FILE* f = std::fopen(options.trace_out.c_str(), "w")) {
      // The anchor lets trace_merge stitch this export onto the same
      // wall-clock timeline as the servers' --trace-out documents.
      obs::ChromeTraceMeta meta{"idem_client c" + std::to_string(options.client_id_base),
                                rpc::realtime_anchor_ns(load.epoch)};
      obs::write_chrome_trace(f, stats.trace, meta);
      std::fclose(f);
      std::printf("  trace      : wrote %s (%zu events)\n", options.trace_out.c_str(),
                  stats.trace.size());
    } else {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0], options.trace_out.c_str());
    }
  }
  return stats.replies > 0 ? 0 : 1;
}
