#!/usr/bin/env bash
# CI gate: tier-1 tests, a time-boxed chaos sweep, an ASan+UBSan test pass,
# a TSan pass over the multi-threaded real-mode suites, a real-deployment
# CLI smoke with a mid-run /metrics scrape under overload, a trace-export
# smoke, a sim-core bench smoke, and a perf gate diffing fresh benchmark
# runs against the committed BENCH_*.json baselines (skippable with
# IDEM_SKIP_PERF_GATE=1) plus a live-telemetry overhead guard.
#
# Usage: tools/ci.sh [--fast] [--coverage]
#   --fast      skip the chaos sweep and the sanitizer passes
#   --coverage  additionally build with IDEM_COVERAGE=ON, re-run the test
#               suite instrumented, and print a line-coverage summary
#               (gcovr when available, raw gcov totals otherwise)
#
# Build dirs: build/ (plain), build-api/ (isolated protocol-library builds),
# build-asan/ (address,undefined), build-tsan/ (thread), build-cov/
# (coverage). All are cmake-standard and safe to delete.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
COVERAGE=0
for arg in "$@"; do
  case "${arg}" in
    --fast) FAST=1 ;;
    --coverage) COVERAGE=1 ;;
    *) echo "unknown option: ${arg}" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "${JOBS}")

# Layering check for the replication core: protocol libraries are policy
# layers over src/core and must not reach into each other. Enforced two
# ways: an include grep (fast, catches header-only leaks) and an isolated
# build of each protocol target (its dependency closure is core + the
# shared lower layers only, so a stray cross-protocol dependency fails).
echo "== core_api_check: no cross-protocol includes =="
if grep -rn '#include "' src/idem src/paxos src/smart src/core \
    | grep -E '"(idem|paxos|smart)/' \
    | grep -vE 'src/idem/[^:]*:.*"idem/|src/paxos/[^:]*:.*"paxos/|src/smart/[^:]*:.*"smart/'; then
  echo "core_api_check FAILED: cross-protocol include found" >&2
  exit 1
fi

echo "== core_api_check: isolated protocol builds =="
cmake -B build-api -S . >/dev/null
for target in idem_replication idem_core idem_paxos idem_smart; do
  cmake --build build-api -j "${JOBS}" --target "${target}"
done

if [[ "${FAST}" -eq 0 ]]; then
  # Time-boxed randomized sweep: N fresh seeds per protocol, linearizability
  # + execution-log invariants checked on every run. The checked-in corpus
  # (tests/corpus/, replayed by ctest above) pins known-interesting seeds;
  # this stage keeps exploring new ones. Seeds rotate daily so a red run is
  # reproducible all day with tools/chaos_run --sweep/--seed.
  CHAOS_SEEDS="${CHAOS_SEEDS:-25}"
  CHAOS_BASE_SEED="${CHAOS_BASE_SEED:-$(( $(date +%Y%m%d) ))}"
  echo "== chaos: sweep ${CHAOS_SEEDS} seeds x 3 protocols (base ${CHAOS_BASE_SEED}) =="
  for proto in idem paxos smart; do
    ./build/tools/chaos_run --sweep "${CHAOS_SEEDS}" --protocol "${proto}" \
        --seed "${CHAOS_BASE_SEED}"
  done

  echo "== sanitizers: ASan+UBSan build =="
  cmake -B build-asan -S . -DIDEM_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "${JOBS}"

  echo "== sanitizers: ctest =="
  (cd build-asan && ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
      ctest --output-on-failure -j "${JOBS}")

  # TSan over the suites that actually spawn threads: the rpc event loop's
  # cross-thread post()/stop() and the whole real-mode runtime (one loop
  # thread per replica). Run serially — TSan-instrumented loopback clusters
  # are heavyweight enough that parallel suites time-box each other out.
  echo "== sanitizers: TSan build (rpc + real runtime) =="
  cmake -B build-tsan -S . -DIDEM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}"

  echo "== sanitizers: TSan ctest =="
  (cd build-tsan && TSAN_OPTIONS=halt_on_error=1 \
      ctest --output-on-failure -R 'EventLoop|Framing|ParseAddress|TcpTransport|RealtimeIdem|RealRuntime|RealCluster|RealSmoke|MetricsTicker|TraceMerge|LiveMetrics|HttpAdmin|Storm|Shard|Deadline|Discipline')
fi

# Time-boxed storm smoke: ~1k connections ramped up (334 sessions x 3
# replicas, cluster hosted in a forked child so both fd budgets stay
# honest) plus a reconnect stampede through a leader crash. fig_storm
# asserts the scenario shapes itself and exits nonzero when they fail;
# the full 10k-connection suite runs in the perf gate below.
echo "== real mode: storm smoke (1k connections, reconnect stampede) =="
IDEM_STORM_SCENARIOS=ramp,stampede IDEM_STORM_SESSIONS=334 \
    IDEM_STORM_STAMPEDE_SESSIONS=334 IDEM_STORM_SECONDS=0.6 \
    IDEM_STORM_RAMP_SECONDS=1.5 IDEM_STORM_JSON=/dev/null \
    ./build/bench/fig_storm >/dev/null

echo "== real mode: CLI smoke =="
./build/tools/idem_server --help >/dev/null
./build/tools/idem_client --help >/dev/null
# A tight reject threshold (--rt 8) against 24 closed-loop clients keeps the
# leader's runtime queue saturated, so the mid-run /metrics scrape below must
# see proactive rejections with the rt-queue-full reason.
SMOKE_BASE=$(( 7300 + RANDOM % 500 ))
ADMIN_BASE=$(( SMOKE_BASE + 500 ))
for i in 0 1 2; do
  PEERS=()
  for j in 0 1 2; do
    [[ "${i}" -ne "${j}" ]] && PEERS+=(--peer "${j}=:$(( SMOKE_BASE + j ))")
  done
  ./build/tools/idem_server --replica-id "${i}" --listen ":$(( SMOKE_BASE + i ))" \
      "${PEERS[@]}" --rt 8 --admin-port "$(( ADMIN_BASE + i ))" --seconds 6 >/dev/null &
done
sleep 0.5
./build/tools/idem_client --replica ":${SMOKE_BASE}" --replica ":$(( SMOKE_BASE + 1 ))" \
    --replica ":$(( SMOKE_BASE + 2 ))" --clients 24 --seconds 3 --warmup 0.5 &
SMOKE_CLIENT=$!

echo "== real mode: live /metrics scrape under overload =="
sleep 2  # mid-run: past warm-up, load still applied
SMOKE_METRICS="$(curl -sf "http://127.0.0.1:${ADMIN_BASE}/metrics")"
echo "${SMOKE_METRICS}" | grep -q '^idem_reply_latency_p50_seconds ' || {
  echo "live scrape FAILED: no windowed reply-latency quantiles" >&2; exit 1; }
SMOKE_REJECTS="$(echo "${SMOKE_METRICS}" \
    | awk '/^idem_rejects_total\{reason="rt-queue-full"\}/ {print int($2)}')"
if [[ "${SMOKE_REJECTS:-0}" -le 0 ]]; then
  echo "live scrape FAILED: expected rt-queue-full rejections under overload" >&2
  exit 1
fi
echo "live scrape OK: ${SMOKE_REJECTS} rt-queue-full rejects visible mid-run"
curl -sf "http://127.0.0.1:${ADMIN_BASE}/stats" | grep -q '"requests_received"' || {
  echo "live scrape FAILED: /stats JSON missing" >&2; exit 1; }
wait "${SMOKE_CLIENT}"
wait

# Deadline smoke: the same 3-replica deployment with EDF scheduling and
# deadline-aware admission armed, driven by budget-stamped clients. The
# client report must show the deadline accounting line, and the /metrics
# scrape must export the idem_deadline_miss_total counter (the
# deadline-unmeetable reject reason appears in the same family once the
# estimator warms up — presence of the counter is the gate; its value
# depends on load luck).
echo "== real mode: EDF + deadline-aware smoke =="
DL_BASE=$(( 7000 + RANDOM % 200 ))
DL_ADMIN=$(( DL_BASE + 300 ))
for i in 0 1 2; do
  PEERS=()
  for j in 0 1 2; do
    [[ "${i}" -ne "${j}" ]] && PEERS+=(--peer "${j}=:$(( DL_BASE + j ))")
  done
  ./build/tools/idem_server --replica-id "${i}" --listen ":$(( DL_BASE + i ))" \
      "${PEERS[@]}" --rt 16 --discipline edf --deadline-aware \
      --admin-port "$(( DL_ADMIN + i ))" --seconds 5 >/dev/null &
done
sleep 0.5
DL_TMP="$(mktemp)"
./build/tools/idem_client --replica ":${DL_BASE}" \
    --replica ":$(( DL_BASE + 1 ))" --replica ":$(( DL_BASE + 2 ))" \
    --clients 24 --seconds 2.5 --warmup 0.5 \
    --deadline-ms 20 --deadline-jitter 10 > "${DL_TMP}" &
DL_CLIENT=$!
sleep 2
curl -sf "http://127.0.0.1:${DL_ADMIN}/metrics" \
    | grep -q '^idem_deadline_miss_total ' || {
  echo "deadline smoke FAILED: /metrics missing idem_deadline_miss_total" >&2; exit 1; }
wait "${DL_CLIENT}"
wait
grep -Eq 'deadlines +: [0-9]+/[1-9][0-9]* replies missed' "${DL_TMP}" || {
  echo "deadline smoke FAILED: client report missing the deadline line" >&2
  cat "${DL_TMP}" >&2; rm -f "${DL_TMP}"; exit 1; }
rm -f "${DL_TMP}"
echo "deadline smoke OK: EDF + deadline-aware cluster served budget-stamped load"

# Sharded deployment smoke: two 3-replica groups as separate server
# processes, a sharded client over real TCP, then the same client fed the
# two groups *swapped* via --map-file — every op must be healed by a
# wrong-shard redirect (one extra hop, nothing lost). The live /stats
# scrape must show the per-group shard section. Splits and per-group
# rejection independence run in tier-1 (shard_real_test) and in the
# fig_shard perf gate below.
echo "== real mode: shard smoke (2 groups, swapped-map redirect round-trip) =="
SHARD_BASE=$(( 7900 + RANDOM % 100 ))
SHARD_ADMIN=$(( SHARD_BASE + 50 ))
for g in 0 1; do
  GBASE=$(( SHARD_BASE + g * 10 ))
  for i in 0 1 2; do
    PEERS=()
    for j in 0 1 2; do
      [[ "${i}" -ne "${j}" ]] && PEERS+=(--peer "${j}=:$(( GBASE + j ))")
    done
    ADMIN=()
    [[ "${g}" -eq 0 && "${i}" -eq 0 ]] && ADMIN=(--admin-port "${SHARD_ADMIN}")
    ./build/tools/idem_server --replica-id "${i}" --listen ":$(( GBASE + i ))" \
        "${PEERS[@]}" --shard-group "${g}" --shard-count 2 "${ADMIN[@]}" \
        --seconds 9 >/dev/null &
  done
done
sleep 0.5
SHARD_REPLICAS=(--replica ":${SHARD_BASE}" --replica ":$(( SHARD_BASE + 1 ))"
    --replica ":$(( SHARD_BASE + 2 ))" --replica ":$(( SHARD_BASE + 10 ))"
    --replica ":$(( SHARD_BASE + 11 ))" --replica ":$(( SHARD_BASE + 12 ))")
SHARD_OUT="$(./build/tools/idem_client "${SHARD_REPLICAS[@]}" --shards 2 \
    --clients 8 --seconds 2 --warmup 0.5)" || {
  echo "shard smoke FAILED: fresh-map client run recorded no replies" >&2; exit 1; }
echo "${SHARD_OUT}" | grep -E 'routing +: 0 redirects' >/dev/null || {
  echo "shard smoke FAILED: fresh-map run was redirected" >&2
  echo "${SHARD_OUT}" >&2; exit 1; }
curl -sf "http://127.0.0.1:${SHARD_ADMIN}/stats" | grep -q '"shard"' || {
  echo "shard smoke FAILED: /stats missing the shard section" >&2; exit 1; }
SHARD_MAP_TMP="$(mktemp --suffix=.json)"
printf '{"epoch": 1, "ranges": [{"begin": 0, "group": 1}, {"begin": "9223372036854775808", "group": 0}]}\n' \
    > "${SHARD_MAP_TMP}"
# --client-id-base: the replicas' duplicate suppression remembers the
# first run's sequence numbers, so a second run must use fresh ids.
SHARD_OUT="$(./build/tools/idem_client "${SHARD_REPLICAS[@]}" --shards 2 \
    --map-file "${SHARD_MAP_TMP}" --client-id-base 100 \
    --clients 4 --seconds 1.5 --warmup 0.3)" || {
  echo "shard smoke FAILED: swapped-map client run recorded no replies" >&2; exit 1; }
rm -f "${SHARD_MAP_TMP}"
echo "${SHARD_OUT}" | grep -E 'routing +: [1-9][0-9]* redirects' >/dev/null || {
  echo "shard smoke FAILED: swapped map produced no redirects" >&2
  echo "${SHARD_OUT}" >&2; exit 1; }
echo "shard smoke OK: $(echo "${SHARD_OUT}" | grep -Eo '[0-9]+ redirects')" \
    "healed through wrong-shard rejections"
wait

echo "== obs: trace export smoke =="
TRACE_TMP="$(mktemp --suffix=.json)"
trap 'rm -f "${TRACE_TMP}"' EXIT
./build/tools/idem_load --protocol idem --clients 200 --seconds 2 --warmup 0.5 \
    --trace-out "${TRACE_TMP}" >/dev/null
./build/tools/trace_check "${TRACE_TMP}" --min-requests 1000

echo "== bench: sim-core smoke =="
IDEM_SIMCORE_SMOKE=1 IDEM_SIMCORE_JSON=/dev/null ./build/bench/micro_simcore

# Batching sweep: batch 1/4/16 load sweep writing BENCH_batching.json. The
# binary itself asserts the shape (batch >= 4 saturates higher than batch 1,
# rejects still appear at 4x load) and exits nonzero when it does not hold.
echo "== bench: fig6 batching sweep =="
IDEM_BENCH_SECONDS=1 IDEM_BENCH_WARMUP=0.3 IDEM_BATCHING_JSON=BENCH_batching.json \
    ./build/bench/fig6_batching

# Perf gate: rerun the committed benchmarks at the same settings their
# baselines were stamped with, then diff against the checked-in JSON.
# bench_compare fails (exit 1) when a throughput metric drops — or a gated
# latency metric rises — by more than the tolerance. On a machine that is
# legitimately slower than the one that stamped the baselines, skip with
# IDEM_SKIP_PERF_GATE=1 (and consider re-stamping: run the two benches
# without IDEM_*_JSON overrides and commit the refreshed files).
if [[ "${IDEM_SKIP_PERF_GATE:-0}" -eq 1 ]]; then
  echo "== perf gate: skipped (IDEM_SKIP_PERF_GATE=1) =="
else
  # Sim-core numbers repeat within ~5%, so 10% is a safe gate. The real
  # sweep measures wall-clock sockets: its under-saturated points (1-2
  # closed-loop clients sharing one core with three replica threads)
  # swing +-20% with scheduler luck, and host contention (this can run
  # in a VM with noisy neighbors) has been seen to halve a whole sweep
  # uniformly for minutes at a time — hence the wide band plus one
  # retry with a fresh run. 35% is still tight against the goodput
  # collapse (-99%) the gate exists to catch, and a genuine code
  # regression fails both runs anyway.
  PERF_TOLERANCE="${IDEM_PERF_TOLERANCE:-0.10}"
  PERF_TOLERANCE_REAL="${IDEM_PERF_TOLERANCE_REAL:-0.35}"
  PERF_TMP="$(mktemp -d)"
  trap 'rm -f "${TRACE_TMP}"; rm -rf "${PERF_TMP}"' EXIT

  # perf_gate <label> <tolerance> <extra-flags|-> <baseline> <fresh> <bench-cmd...>
  perf_gate() {
    local label="$1" tolerance="$2" extra="$3" baseline="$4" fresh="$5"
    shift 5
    local flags=()
    [[ "${extra}" != "-" ]] && read -ra flags <<< "${extra}"
    for attempt in 1 2; do
      "$@" >/dev/null
      if ./build/tools/bench_compare --label "${label}" --tolerance "${tolerance}" \
          "${flags[@]}" --baseline "${baseline}" --fresh "${fresh}"; then
        return 0
      fi
      [[ "${attempt}" -eq 1 ]] && \
          echo "perf gate ${label}: failed, retrying once with a fresh run"
    done
    return 1
  }

  echo "== perf gate: sim core vs BENCH_simcore.json =="
  perf_gate simcore "${PERF_TOLERANCE}" - BENCH_simcore.json "${PERF_TMP}/simcore.json" \
      env IDEM_SIMCORE_JSON="${PERF_TMP}/simcore.json" ./build/bench/micro_simcore

  # --throughput-only: absolute wall-clock latency inflates with host
  # contention independently of this codebase; fig6_real itself asserts
  # the latency *shape* (flat p50 below saturation) on every run.
  echo "== perf gate: real mode vs BENCH_real.json =="
  perf_gate real "${PERF_TOLERANCE_REAL}" --throughput-only \
      BENCH_real.json "${PERF_TMP}/real.json" \
      env IDEM_REAL_JSON="${PERF_TMP}/real.json" ./build/bench/fig6_real

  # Storm scenarios at full scale (10k-connection ramp, 4x flash crowd,
  # 1k-session stampede, slow loris): fig_storm asserts the scenario
  # shapes on every run; the gate only diffs the flash crowd's goodput
  # peak, the one stable throughput statistic in the suite (connect and
  # rejection tails swing with scheduler luck on a loaded host).
  echo "== perf gate: storm scenarios vs BENCH_storm.json =="
  perf_gate storm "${PERF_TOLERANCE_REAL}" "--peak reply_kops" \
      BENCH_storm.json "${PERF_TMP}/storm.json" \
      env IDEM_STORM_JSON="${PERF_TMP}/storm.json" ./build/bench/fig_storm

  # Sharded scale-out: fig_shard asserts its machine-independent shapes
  # on every run (per-group rejection independence, linearizable live
  # split, zero redirects on a fresh map); the gate diffs only the sweep's
  # peak reply throughput — per-point numbers on a core-starved host
  # measure the scheduler, not the sharding layer (EXPERIMENTS.md).
  echo "== perf gate: shard scale-out vs BENCH_shard.json =="
  perf_gate shard "${PERF_TOLERANCE_REAL}" "--peak reply_kops" \
      BENCH_shard.json "${PERF_TMP}/shard.json" \
      env IDEM_SHARD_JSON="${PERF_TMP}/shard.json" ./build/bench/fig_shard

  # Deadline-aware admission: fig_deadline asserts the cross-policy win
  # (deadline-aware beats tail-drop AND AQM on p99.9 + miss rate at >= 2x
  # overload) on every run; the gate additionally diffs against the
  # stamped baseline with --gate-tails, so the deadline-aware arm's
  # p999_ms and miss_pct become gated lower-is-better metrics. The sweep
  # runs in the deterministic sim harness, so the sim tolerance applies.
  echo "== perf gate: deadline admission vs BENCH_deadline.json =="
  perf_gate deadline "${PERF_TOLERANCE}" --gate-tails \
      BENCH_deadline.json "${PERF_TMP}/deadline.json" \
      env IDEM_DEADLINE_JSON="${PERF_TMP}/deadline.json" ./build/bench/fig_deadline

  # Live-telemetry overhead guard: the same sweep with the admin endpoint
  # and windowed metrics armed (IDEM_REAL_LIVE=1) must keep its saturation
  # peak within a few percent of the plain run the real gate just produced
  # on this same host. Only the peak is gated (--peak): the under-saturated
  # points swing with scheduler luck far beyond any telemetry cost, while
  # the peak is the stable summary statistic a hot-path tax would move.
  LIVE_TOLERANCE="${IDEM_LIVE_OVERHEAD_TOLERANCE:-0.02}"
  echo "== perf gate: live telemetry overhead (peak reply_kops) =="
  LIVE_OK=0
  for attempt in 1 2; do
    env IDEM_REAL_LIVE=1 IDEM_REAL_JSON="${PERF_TMP}/real_live.json" \
        ./build/bench/fig6_real >/dev/null
    if ./build/tools/bench_compare --label live-overhead \
        --tolerance "${LIVE_TOLERANCE}" --peak reply_kops \
        --baseline "${PERF_TMP}/real.json" --fresh "${PERF_TMP}/real_live.json"; then
      LIVE_OK=1
      break
    fi
    [[ "${attempt}" -eq 1 ]] && \
        echo "perf gate live-overhead: failed, retrying once with a fresh run"
  done
  [[ "${LIVE_OK}" -eq 1 ]]
fi

if [[ "${COVERAGE}" -eq 1 ]]; then
  echo "== coverage: instrumented build =="
  cmake -B build-cov -S . -DIDEM_COVERAGE=ON >/dev/null
  cmake --build build-cov -j "${JOBS}"
  (cd build-cov && ctest --output-on-failure -j "${JOBS}" >/dev/null)

  echo "== coverage: summary (src/) =="
  if command -v gcovr >/dev/null 2>&1; then
    gcovr --root . --filter 'src/' build-cov --print-summary
  else
    # gcov fallback: aggregate line totals over files under src/.
    find build-cov/src -name '*.gcda' -print0 | while IFS= read -r -d '' gcda; do
      gcov -n "${gcda}" 2>/dev/null
    done | awk -v root="$(pwd)/src/" '
      /^File/ { f=$2; gsub(/'\''/, "", f); ours = index(f, root) == 1 }
      /^Lines executed:/ && ours {
        split($0, m, /[:% ]+/); pct=m[3]; of=m[5];
        covered += of * pct / 100; total += of;
      }
      END {
        if (total > 0)
          printf "lines: %.1f%% (%d of %d)\n", 100 * covered / total, covered, total;
        else print "no coverage data found";
      }'
  fi
fi

echo "CI OK"
