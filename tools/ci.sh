#!/usr/bin/env bash
# CI gate: tier-1 tests, an ASan+UBSan test pass, a trace-export smoke, and
# a sim-core bench smoke.
#
# Usage: tools/ci.sh [--fast]
#   --fast  skip the sanitizer pass (tier-1 + bench smoke only)
#
# Build dirs: build/ (plain), build-asan/ (address,undefined). Both are
# cmake-standard and safe to delete.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "${JOBS}")

if [[ "${FAST}" -eq 0 ]]; then
  echo "== sanitizers: ASan+UBSan build =="
  cmake -B build-asan -S . -DIDEM_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "${JOBS}"

  echo "== sanitizers: ctest =="
  (cd build-asan && ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
      ctest --output-on-failure -j "${JOBS}")
fi

echo "== obs: trace export smoke =="
TRACE_TMP="$(mktemp --suffix=.json)"
trap 'rm -f "${TRACE_TMP}"' EXIT
./build/tools/idem_load --protocol idem --clients 200 --seconds 2 --warmup 0.5 \
    --trace-out "${TRACE_TMP}" >/dev/null
./build/tools/trace_check "${TRACE_TMP}" --min-requests 1000

echo "== bench: sim-core smoke =="
IDEM_SIMCORE_SMOKE=1 IDEM_SIMCORE_JSON=/dev/null ./build/bench/micro_simcore

echo "CI OK"
