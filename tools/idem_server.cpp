// idem-server: hosts one IDEM replica as a standalone TCP server.
//
// Three of these on one machine make a live cluster (ports chosen up
// front); clients connect with idem_client. The replica code is the exact
// IdemReplica the simulator benchmarks — only the runtime (epoll event
// loop, wall clock) and transport (kernel TCP) differ.
//
//   idem_server --replica-id 0 --listen :7000 --peer 1=:7001 --peer 2=:7002
//   idem_server --replica-id 1 --listen :7001 --peer 0=:7000 --peer 2=:7002
//   idem_server --replica-id 2 --listen :7002 --peer 0=:7000 --peer 1=:7001
//
// Runs until SIGINT/SIGTERM (or --seconds); prints protocol and transport
// counters on exit. Exit code 0 on a clean stop, 2 on usage errors.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "app/kv_store.hpp"
#include "consensus/addresses.hpp"
#include "consensus/messages.hpp"
#include "idem/acceptance.hpp"
#include "idem/replica.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/live_metrics.hpp"
#include "real/exec_thread.hpp"
#include "cli_util.hpp"
#include "rpc/event_loop.hpp"
#include "rpc/http_admin.hpp"
#include "rpc/tcp_transport.hpp"
#include "sim/discipline.hpp"
#include "shard/gate.hpp"
#include "shard/shard_map.hpp"

using namespace idem;

namespace {

struct Options {
  std::uint32_t replica_id = 0;
  rpc::PeerAddress listen{"127.0.0.1", 0};
  std::vector<std::pair<std::uint32_t, rpc::PeerAddress>> peers;
  std::size_t n = 3;
  std::size_t f = 1;
  std::size_t reject_threshold = 50;
  std::size_t expected_clients = 16;
  std::uint64_t seed = 1;
  double seconds = 0;  ///< 0 = run until SIGINT/SIGTERM
  double viewchange_seconds = 1.5;
  std::size_t batch_max = 32;
  std::size_t batch_min = 1;
  double batch_flush_delay_us = 0;
  bool exec_thread = false;
  bool peer_priority = true;
  bool edf = false;            ///< --discipline edf
  bool deadline_aware = false; ///< wrap acceptance in core::DeadlineAware
  std::size_t max_conns = 0;          ///< inbound connection cap (0 = unlimited)
  double idle_timeout_sec = 0;        ///< evict silent inbound connections (0 = off)
  double half_open_timeout_sec = 0;   ///< evict trickled partial frames (0 = off)
  std::size_t read_buffer = 0;        ///< per-connection recv buffer (0 = default)
  bool admin = false;             ///< --admin-port given
  std::uint16_t admin_port = 0;   ///< 0 = ephemeral
  bool sharded = false;                ///< --shard-group given
  std::uint32_t shard_group = 0;       ///< this replica's replication group
  std::size_t shard_count = 0;         ///< uniform map over M groups (0 = map file)
  const char* shard_map_file = nullptr;
  const char* trace_out = nullptr;
  std::size_t trace_capacity = 1u << 18;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --replica-id I --listen [HOST:]PORT --peer J=[HOST:]PORT ...\n"
      "  --replica-id I     id of this replica (0-based, required)\n"
      "  --listen ADDR      bind address; HOST defaults to 127.0.0.1, use\n"
      "                     0.0.0.0 to accept non-local peers (required)\n"
      "  --peer J=ADDR      address of replica J (repeat for every peer)\n"
      "  --n N              cluster size                  (default: 3)\n"
      "  --f F              tolerated crash faults        (default: 1)\n"
      "  --rt N             reject threshold r            (default: 50)\n"
      "  --clients N        expected client population,\n"
      "                     sizes the AQM groups          (default: 16)\n"
      "  --seed N           rng seed                      (default: 1)\n"
      "  --seconds S        stop after S seconds          (default: until signal)\n"
      "  --viewchange S     progress timeout in seconds   (default: 1.5)\n"
      "  --batch-max N      max request ids per PROPOSE   (default: 32)\n"
      "  --batch-min N      ids needed to cut a batch\n"
      "                     immediately                   (default: 1)\n"
      "  --batch-flush-delay US\n"
      "                     max microseconds a queued id\n"
      "                     waits for a fuller batch      (default: 0)\n"
      "  --exec-thread      run state-machine execution on a dedicated\n"
      "                     thread (pays off with spare cores)\n"
      "  --discipline D     fifo | edf: service-queue order for client\n"
      "                     REQUESTs; edf drains earliest-deadline-first\n"
      "                                                   (default: fifo)\n"
      "  --deadline-aware   reject REQUESTs whose latency budget the online\n"
      "                     wait estimator says cannot be met\n"
      "  --no-peer-priority service client and replica traffic through one\n"
      "                     FIFO lane (disables overload prioritization)\n"
      "  --max-conns N      cap concurrent inbound connections; beyond it,\n"
      "                     new connections are shed at accept\n"
      "                     (reason connection-limit)      (default: unlimited)\n"
      "  --idle-timeout S   evict inbound connections silent for S seconds\n"
      "                     (default: off)\n"
      "  --half-open-timeout S\n"
      "                     evict inbound connections holding a partial\n"
      "                     frame for S seconds (slow-loris defence)\n"
      "                     (default: off)\n"
      "  --read-buffer N    per-connection receive buffer bytes; shrink for\n"
      "                     many-thousand-connection storms (default: 16384)\n"
      "  --shard-group G    this replica's replication group: REQUESTs whose\n"
      "                     key hashes outside G's ranges get a WrongShard\n"
      "                     REJECT naming the home group (requires\n"
      "                     --shard-count or --shard-map)\n"
      "  --shard-count M    route by a uniform hash-range map over M groups\n"
      "  --shard-map FILE   route by a shard map JSON file\n"
      "                     ({\"epoch\":E,\"ranges\":[{\"begin\":B,\"group\":G},...]})\n"
      "  --admin-port P     serve live telemetry over HTTP on 127.0.0.1:P\n"
      "                     (/metrics, /stats, /trace; 0 = ephemeral, the\n"
      "                     chosen port is printed at startup)\n"
      "  --trace-out PATH   record a request-lifecycle trace and export it\n"
      "                     as Chrome trace JSON on exit (stitch exports\n"
      "                     from several processes with trace_merge)\n"
      "  --trace-capacity N trace ring capacity in events (default: 2^18)\n",
      argv0);
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options options;
  bool saw_id = false, saw_listen = false;
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      usage(argv[0]);
      std::exit(0);
    } else if (!std::strcmp(arg, "--replica-id")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.replica_id = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      saw_id = true;
    } else if (!std::strcmp(arg, "--listen")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      auto address = rpc::parse_address(v);
      if (!address.has_value()) {
        std::fprintf(stderr, "%s: bad --listen address '%s'\n", argv[0], v);
        return std::nullopt;
      }
      options.listen = *address;
      saw_listen = true;
    } else if (!std::strcmp(arg, "--peer")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr) {
        std::fprintf(stderr, "%s: --peer wants J=ADDR, got '%s'\n", argv[0], v);
        return std::nullopt;
      }
      auto address = rpc::parse_address(eq + 1);
      if (!address.has_value()) {
        std::fprintf(stderr, "%s: bad --peer address '%s'\n", argv[0], eq + 1);
        return std::nullopt;
      }
      options.peers.emplace_back(
          static_cast<std::uint32_t>(std::strtoul(std::string(v, eq).c_str(), nullptr, 10)),
          *address);
    } else if (!std::strcmp(arg, "--n")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.n = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--f")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.f = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--rt")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.reject_threshold = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--clients")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.expected_clients = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--seed")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--seconds")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.seconds = std::atof(v);
    } else if (!std::strcmp(arg, "--viewchange")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.viewchange_seconds = std::atof(v);
    } else if (!std::strcmp(arg, "--batch-max")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.batch_max = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--batch-min")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.batch_min = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--batch-flush-delay")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.batch_flush_delay_us = std::atof(v);
    } else if (!std::strcmp(arg, "--exec-thread")) {
      options.exec_thread = true;
    } else if (!std::strcmp(arg, "--discipline")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      if (!std::strcmp(v, "edf")) {
        options.edf = true;
      } else if (std::strcmp(v, "fifo") != 0) {
        std::fprintf(stderr, "%s: --discipline wants fifo or edf, got '%s'\n", argv[0], v);
        return std::nullopt;
      }
    } else if (!std::strcmp(arg, "--deadline-aware")) {
      options.deadline_aware = true;
    } else if (!std::strcmp(arg, "--no-peer-priority")) {
      options.peer_priority = false;
    } else if (!std::strcmp(arg, "--max-conns")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.max_conns = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--idle-timeout")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.idle_timeout_sec = std::atof(v);
    } else if (!std::strcmp(arg, "--half-open-timeout")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.half_open_timeout_sec = std::atof(v);
    } else if (!std::strcmp(arg, "--read-buffer")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.read_buffer = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--shard-group")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.shard_group = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      options.sharded = true;
    } else if (!std::strcmp(arg, "--shard-count")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.shard_count = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--shard-map")) {
      options.shard_map_file = value();
      if (options.shard_map_file == nullptr) return std::nullopt;
    } else if (!std::strcmp(arg, "--admin-port")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.admin = true;
      options.admin_port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (!std::strcmp(arg, "--trace-out")) {
      options.trace_out = value();
      if (options.trace_out == nullptr) return std::nullopt;
    } else if (!std::strcmp(arg, "--trace-capacity")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.trace_capacity = std::strtoul(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg);
      return std::nullopt;
    }
  }
  if (!saw_id || !saw_listen) {
    if (argc > 1) std::fprintf(stderr, "%s: --replica-id and --listen are required\n", argv[0]);
    return std::nullopt;
  }
  if (options.sharded && options.shard_count == 0 && options.shard_map_file == nullptr) {
    std::fprintf(stderr, "%s: --shard-group needs --shard-count or --shard-map\n", argv[0]);
    return std::nullopt;
  }
  if (!options.sharded && (options.shard_count > 0 || options.shard_map_file != nullptr)) {
    std::fprintf(stderr, "%s: --shard-count/--shard-map need --shard-group\n", argv[0]);
    return std::nullopt;
  }
  return options;
}

rpc::EventLoop* g_loop = nullptr;

// stop() is async-signal-safe: an atomic store plus an eventfd write.
void handle_signal(int) {
  if (g_loop != nullptr) g_loop->stop();
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = parse_args(argc, argv);
  if (!parsed.has_value()) {
    usage(argv[0]);
    return 2;
  }
  const Options& options = *parsed;

  // Real mode always ships the reason byte on REJECT and accepts (and
  // re-emits) the deadline field on REQUEST (the sim keeps both off so
  // wire-size cost charges stay pinned to the frozen trajectories).
  msg::set_wire_reject_reasons(true);
  msg::set_wire_request_deadlines(true);

  // Capture the epoch explicitly so trace timestamps and the wall-clock
  // stitching anchor refer to the same instant.
  const rpc::EventLoop::Epoch epoch = std::chrono::steady_clock::now();
  rpc::EventLoop loop(options.seed, epoch);
  rpc::TcpTransportConfig transport_config;
  transport_config.fixed_port = options.listen.port;
  transport_config.listen_host = options.listen.host;
  transport_config.max_inbound_connections = options.max_conns;
  transport_config.idle_timeout = static_cast<Duration>(options.idle_timeout_sec * kSecond);
  transport_config.half_open_timeout =
      static_cast<Duration>(options.half_open_timeout_sec * kSecond);
  if (options.read_buffer > 0) transport_config.read_buffer_bytes = options.read_buffer;
  rpc::TcpTransport transport(loop, transport_config);

  core::IdemConfig config;
  config.n = options.n;
  config.f = options.f;
  config.reject_threshold = options.reject_threshold;
  config.viewchange_timeout = static_cast<Duration>(options.viewchange_seconds * kSecond);
  // Real time is the cost model (no simulated CPU charges), and the
  // real-mode hot path is on by default, matching RealClusterConfig:
  // REQUIREs and leader batch cuts aggregate at end-of-iteration (due
  // timers fire after each iteration's I/O phase, so a recv burst leaves
  // as one REQUIRE / one PROPOSE at no latency cost), followers ack
  // instances to the leader only, and slots whose clients moved on are
  // adopted or released instead of leaking until the forward timeout.
  config.costs = consensus::CostModel{0, 0.0, 0, 0.0, 0.0, 0.0, 1.0};
  config.batch_max = options.batch_max;
  config.batch_min = options.batch_min;
  config.batch_flush_delay = static_cast<Duration>(options.batch_flush_delay_us * kMicrosecond);
  config.require_batch_max = 32;
  config.require_flush_interval = 0;
  config.defer_propose = true;
  config.commit_to_leader_only = true;
  config.require_adoption = true;
  config.release_superseded = true;

  // The gate outlives the replica (the config holds a borrowed pointer).
  std::unique_ptr<shard::GroupShardGate> gate;
  if (options.sharded) {
    shard::ShardMap map =
        shard::ShardMap::uniform(options.shard_count > 0 ? options.shard_count : 1);
    if (options.shard_map_file != nullptr) {
      auto text = cli::read_file(argv[0], options.shard_map_file);
      if (!text.has_value()) return 2;
      try {
        map = shard::ShardMap::parse(*text);
      } catch (const json::ParseError& e) {
        std::fprintf(stderr, "%s: bad shard map %s: %s\n", argv[0], options.shard_map_file,
                     e.what());
        return 2;
      }
    }
    gate = std::make_unique<shard::GroupShardGate>(options.shard_group, std::move(map));
    config.shard_gate = gate.get();
  }

  obs::LiveMetrics hub;
  if (options.admin) config.telemetry = core::LiveTelemetry::attach(hub.make_shard());

  std::unique_ptr<obs::TraceRecorder> trace;
  if (options.trace_out != nullptr || options.admin) {
    trace = std::make_unique<obs::TraceRecorder>(options.trace_capacity);
    config.trace = trace.get();
  }

  const obs::ChromeTraceMeta trace_meta{
      "idem_server r" + std::to_string(options.replica_id), rpc::realtime_anchor_ns(epoch)};

  std::unique_ptr<real::ExecutionThread> executor;
  if (options.exec_thread) {
    executor = std::make_unique<real::ExecutionThread>(loop);
    config.executor = executor.get();
  }

  std::unique_ptr<core::AcceptanceTest> acceptance =
      core::make_default_acceptance(config, options.expected_clients);
  if (options.deadline_aware) {
    acceptance = std::make_unique<core::DeadlineAware>(core::DeadlineAware::Params{},
                                                       std::move(acceptance));
  }
  core::IdemReplica replica(loop, transport, ReplicaId{options.replica_id}, config,
                            std::make_unique<app::KvStore>(app::KvStore::Costs{0, 0.0, 0}),
                            std::move(acceptance));
  if (options.edf) replica.set_discipline(sim::make_discipline(sim::DisciplineKind::Edf));
  // No modelled service time: dispatch deliveries inline while idle, and
  // serve agreement traffic ahead of the client-REQUEST flood.
  replica.set_inline_dispatch(true);
  if (options.peer_priority) {
    replica.set_urgent_classifier(
        [](sim::NodeId from) { return !consensus::is_client_address(from); });
  }
  for (const auto& [peer_id, address] : options.peers) {
    transport.set_remote(consensus::replica_address(ReplicaId{peer_id}), address);
  }

  std::unique_ptr<rpc::HttpAdmin> admin;
  if (options.admin) {
    // Transport counters are maintained outside the shard machinery;
    // mirror them in at scrape time so they window like everything else.
    obs::LiveShard* net_shard = hub.make_shard();
    struct NetSeries {
      obs::LiveShard::SeriesId sent, delivered, dropped, decode_errors, shed, oversized,
          conn_limit, idle_evicted, half_open_evicted, accepted, inbound, outbound,
          conn_memory;
    };
    NetSeries net{net_shard->counter("tcp_messages_sent"),
                  net_shard->counter("tcp_messages_delivered"),
                  net_shard->counter("tcp_dropped"),
                  net_shard->counter("tcp_decode_errors"),
                  net_shard->counter("rejects[reason=backpressure-shed]"),
                  net_shard->counter("rejects[reason=oversized-frame]"),
                  net_shard->counter("rejects[reason=connection-limit]"),
                  net_shard->counter("tcp_idle_evictions"),
                  net_shard->counter("tcp_half_open_evictions"),
                  net_shard->counter("tcp_accepted_connections"),
                  net_shard->counter("tcp_inbound_connections"),
                  net_shard->counter("tcp_outbound_connections"),
                  net_shard->counter("tcp_connection_memory_bytes")};
    auto mirror_transport = [&transport, net_shard, net] {
      const rpc::TransportStats& t = transport.stats();
      const rpc::TransportMemory m = transport.memory();
      net_shard->set(net.sent, t.messages_sent);
      net_shard->set(net.delivered, t.messages_delivered);
      net_shard->set(net.dropped, t.dropped);
      net_shard->set(net.decode_errors, t.decode_errors);
      net_shard->set(net.shed, t.send_queue_overflows);
      net_shard->set(net.oversized, t.oversized_frames);
      net_shard->set(net.conn_limit, t.connection_limit_sheds);
      net_shard->set(net.idle_evicted, t.idle_evictions);
      net_shard->set(net.half_open_evicted, t.half_open_evictions);
      net_shard->set(net.accepted, t.accepted_connections);
      net_shard->set(net.inbound, m.inbound_connections);
      net_shard->set(net.outbound, m.outbound_connections);
      net_shard->set(net.conn_memory, m.total_bytes());
    };

    admin = std::make_unique<rpc::HttpAdmin>(loop, options.admin_port);
    admin->route("/metrics", "text/plain; version=0.0.4", [&hub, mirror_transport] {
      mirror_transport();
      return obs::LiveMetrics::render_prometheus(hub.snapshot());
    });
    admin->route("/stats", "application/json", [&replica, &transport, &trace, &gate] {
      const core::ReplicaStats& s = replica.stats();
      const rpc::TransportStats& t = transport.stats();
      const rpc::TransportMemory m = transport.memory();
      char shard_buf[192] = "";
      if (gate) {
        const shard::GroupShardGate::Stats gs = gate->stats();
        std::snprintf(shard_buf, sizeof shard_buf,
                      "\"shard\":{\"group\":%u,\"map_epoch\":%llu,\"admitted\":%llu,"
                      "\"redirected\":%llu,\"frozen_rejects\":%llu},",
                      gate->group(), static_cast<unsigned long long>(gate->epoch()),
                      static_cast<unsigned long long>(gs.admitted),
                      static_cast<unsigned long long>(gs.redirected),
                      static_cast<unsigned long long>(gs.frozen));
      }
      char buf[1792];
      std::snprintf(
          buf, sizeof buf,
          "{\"view\":%llu,\"leader\":%s,"
          "\"requests_received\":%llu,\"accepted\":%llu,\"rejected\":%llu,"
          "\"wrong_shard\":%llu,\"executed\":%llu,\"deadline_misses\":%llu,%s"
          "\"tcp\":{\"messages_sent\":%llu,\"bytes_sent\":%llu,"
          "\"messages_delivered\":%llu,\"dropped\":%llu,\"decode_errors\":%llu,"
          "\"send_queue_overflows\":%llu,\"oversized_frames\":%llu,"
          "\"accepted_connections\":%llu,\"connection_limit_sheds\":%llu,"
          "\"idle_evictions\":%llu,\"half_open_evictions\":%llu,"
          "\"pending_write_bytes\":%zu,"
          "\"inbound_connections\":%zu,\"outbound_connections\":%zu,"
          "\"inbound_buffer_bytes\":%zu,\"connection_memory_bytes\":%zu},"
          "\"trace_recorded\":%llu}",
          static_cast<unsigned long long>(replica.view().value),
          replica.is_leader() ? "true" : "false",
          static_cast<unsigned long long>(s.requests_received),
          static_cast<unsigned long long>(s.accepted),
          static_cast<unsigned long long>(s.rejected),
          static_cast<unsigned long long>(s.wrong_shard),
          static_cast<unsigned long long>(s.executed),
          static_cast<unsigned long long>(s.deadline_misses), shard_buf,
          static_cast<unsigned long long>(t.messages_sent),
          static_cast<unsigned long long>(t.bytes_sent),
          static_cast<unsigned long long>(t.messages_delivered),
          static_cast<unsigned long long>(t.dropped),
          static_cast<unsigned long long>(t.decode_errors),
          static_cast<unsigned long long>(t.send_queue_overflows),
          static_cast<unsigned long long>(t.oversized_frames),
          static_cast<unsigned long long>(t.accepted_connections),
          static_cast<unsigned long long>(t.connection_limit_sheds),
          static_cast<unsigned long long>(t.idle_evictions),
          static_cast<unsigned long long>(t.half_open_evictions),
          transport.pending_write_bytes(), m.inbound_connections,
          m.outbound_connections, m.inbound_buffer_bytes, m.total_bytes(),
          static_cast<unsigned long long>(trace ? trace->total_recorded() : 0));
      return std::string(buf);
    });
    admin->route("/trace", "application/json", [&trace, &trace_meta] {
      char* buf = nullptr;
      std::size_t len = 0;
      std::FILE* mem = open_memstream(&buf, &len);
      if (mem == nullptr) return std::string("{}");
      obs::write_chrome_trace(mem, trace->snapshot(), trace_meta);
      std::fclose(mem);
      std::string body(buf, len);
      std::free(buf);
      return body;
    });
    std::printf("idem_server: admin on 127.0.0.1:%u (/metrics /stats /trace)\n",
                admin->port());
  }

  std::printf("idem_server: replica %u listening on %s:%u (n=%zu f=%zu rt=%zu)\n",
              options.replica_id, options.listen.host.c_str(),
              transport.port_of(consensus::replica_address(ReplicaId{options.replica_id})),
              options.n, options.f, options.reject_threshold);
  if (gate) {
    std::printf("idem_server: shard group %u, map epoch %llu (%zu ranges)\n",
                gate->group(), static_cast<unsigned long long>(gate->epoch()),
                gate->map().entries().size());
  }
  std::fflush(stdout);

  g_loop = &loop;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (options.seconds > 0) {
    loop.run_for(static_cast<Duration>(options.seconds * kSecond));
  } else {
    loop.run();
  }
  // Join the execution worker before the replica (and its state machine)
  // goes out of scope; a completion posted to the stopped loop never runs.
  if (executor) executor->stop();

  const core::ReplicaStats& stats = replica.stats();
  std::printf("idem_server: stopping (view %llu, leader %s)\n",
              static_cast<unsigned long long>(replica.view().value),
              replica.is_leader() ? "yes" : "no");
  std::printf("  requests %llu | accepted %llu | rejected %llu | executed %llu |"
              " deadline misses %llu\n",
              static_cast<unsigned long long>(stats.requests_received),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.executed),
              static_cast<unsigned long long>(stats.deadline_misses));
  if (gate) {
    const shard::GroupShardGate::Stats gs = gate->stats();
    std::printf("  shard: admitted %llu | redirected %llu (wrong shard) | frozen %llu\n",
                static_cast<unsigned long long>(gs.admitted),
                static_cast<unsigned long long>(gs.redirected),
                static_cast<unsigned long long>(gs.frozen));
  }
  const rpc::TransportStats& net = transport.stats();
  std::printf("  tcp: sent %llu msgs / %llu bytes | delivered %llu | dropped %llu |"
              " decode errors %llu\n",
              static_cast<unsigned long long>(net.messages_sent),
              static_cast<unsigned long long>(net.bytes_sent),
              static_cast<unsigned long long>(net.messages_delivered),
              static_cast<unsigned long long>(net.dropped),
              static_cast<unsigned long long>(net.decode_errors));
  if (options.trace_out != nullptr && trace) {
    std::FILE* out = std::fopen(options.trace_out, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "idem_server: cannot write %s\n", options.trace_out);
      return 1;
    }
    obs::ChromeTraceStats exported = obs::write_chrome_trace(out, trace->snapshot(), trace_meta);
    std::fclose(out);
    std::printf("  trace: %llu spans, %llu instants (%llu shed) -> %s\n",
                static_cast<unsigned long long>(exported.spans),
                static_cast<unsigned long long>(exported.instants),
                static_cast<unsigned long long>(trace->overwritten()), options.trace_out);
  }
  return 0;
}
