// Minimal JSON document model + recursive-descent parser shared by the
// repo's CLI tools (trace_check, bench_compare). Self-contained on
// purpose: the tools stay dependency-free and link against nothing but
// the standard library.
//
// The model is deliberately small: every number is a double, objects
// preserve insertion order (lookup is linear — documents here are tiny),
// and \u escapes decode BMP code points only. Good enough for the JSON
// the repo itself emits; not a general-purpose parser.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace idem::tooljson {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const char* key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  Parser(const char* data, std::size_t size) : pos_(data), end_(data + size) {}

  bool parse(JsonValue& out) {
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != end_) return fail("trailing garbage after document");
    return true;
  }

  const std::string& error() const { return error_; }
  std::size_t offset(const char* base) const { return static_cast<std::size_t>(pos_ - base); }

 private:
  bool fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  void skip_ws() {
    while (pos_ != end_ &&
           (*pos_ == ' ' || *pos_ == '\t' || *pos_ == '\n' || *pos_ == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* text) {
    std::size_t len = std::strlen(text);
    if (static_cast<std::size_t>(end_ - pos_) < len || std::memcmp(pos_, text, len) != 0) {
      return fail("invalid literal");
    }
    pos_ += len;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ == end_) return fail("unexpected end of input");
    switch (*pos_) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::String;
        return parse_string(out.string);
      case 't': out.kind = JsonValue::Kind::Bool; out.boolean = true; return literal("true");
      case 'f': out.kind = JsonValue::Kind::Bool; out.boolean = false; return literal("false");
      case 'n': out.kind = JsonValue::Kind::Null; return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ != end_ && *pos_ == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (pos_ == end_ || *pos_ != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ == end_ || *pos_ != ':') return fail("expected ':' after key");
      ++pos_;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ == end_) return fail("unterminated object");
      if (*pos_ == ',') { ++pos_; continue; }
      if (*pos_ == '}') { ++pos_; return true; }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ != end_ && *pos_ == ']') { ++pos_; return true; }
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ == end_) return fail("unterminated array");
      if (*pos_ == ',') { ++pos_; continue; }
      if (*pos_ == ']') { ++pos_; return true; }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ != end_) {
      char c = *pos_++;
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char in string");
      if (c != '\\') { out.push_back(c); continue; }
      if (pos_ == end_) break;
      char esc = *pos_++;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (end_ - pos_ < 4) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *pos_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // Emitters in this repo never produce non-ASCII; decode BMP code
          // points as UTF-8 so hand-edited files still pass.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const char* start = pos_;
    if (pos_ != end_ && *pos_ == '-') ++pos_;
    while (pos_ != end_ && ((*pos_ >= '0' && *pos_ <= '9') || *pos_ == '.' ||
                            *pos_ == 'e' || *pos_ == 'E' || *pos_ == '+' || *pos_ == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    std::string text(start, pos_);
    char* parsed_end = nullptr;
    out.number = std::strtod(text.c_str(), &parsed_end);
    if (parsed_end == nullptr || *parsed_end != '\0') return fail("malformed number");
    out.kind = JsonValue::Kind::Number;
    return true;
  }

  const char* pos_;
  const char* end_;
  std::string error_;
};

/// Serializes `value` back to JSON text. Numbers render with up to 15
/// significant digits, trimmed of trailing zeros, so round-tripping a
/// document this repo emitted is lossless for its value ranges
/// (timestamps in µs with 3 decimals, counters, ns anchors).
inline void write_json(std::FILE* out, const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::Null:
      std::fputs("null", out);
      return;
    case JsonValue::Kind::Bool:
      std::fputs(value.boolean ? "true" : "false", out);
      return;
    case JsonValue::Kind::Number: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.15g", value.number);
      std::fputs(buf, out);
      return;
    }
    case JsonValue::Kind::String: {
      std::fputc('"', out);
      for (char c : value.string) {
        switch (c) {
          case '"': std::fputs("\\\"", out); break;
          case '\\': std::fputs("\\\\", out); break;
          case '\n': std::fputs("\\n", out); break;
          case '\r': std::fputs("\\r", out); break;
          case '\t': std::fputs("\\t", out); break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              std::fprintf(out, "\\u%04x", c);
            } else {
              std::fputc(c, out);
            }
        }
      }
      std::fputc('"', out);
      return;
    }
    case JsonValue::Kind::Array: {
      std::fputc('[', out);
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        if (i > 0) std::fputc(',', out);
        write_json(out, value.array[i]);
      }
      std::fputc(']', out);
      return;
    }
    case JsonValue::Kind::Object: {
      std::fputc('{', out);
      for (std::size_t i = 0; i < value.object.size(); ++i) {
        if (i > 0) std::fputc(',', out);
        JsonValue key;
        key.kind = JsonValue::Kind::String;
        key.string = value.object[i].first;
        write_json(out, key);
        std::fputc(':', out);
        write_json(out, value.object[i].second);
      }
      std::fputc('}', out);
      return;
    }
  }
}

/// Reads `path` and parses it; on failure prints a diagnostic to stderr
/// and returns false. `out` is left default-constructed on error.
inline bool parse_file(const char* path, JsonValue& out, std::string& error) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    error = "cannot open file";
    return false;
  }
  std::string data;
  char buffer[1 << 16];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, f)) > 0) data.append(buffer, got);
  std::fclose(f);

  Parser parser(data.data(), data.size());
  if (!parser.parse(out)) {
    error = "parse error at byte " + std::to_string(parser.offset(data.data())) + ": " +
            parser.error();
    return false;
  }
  return true;
}

}  // namespace idem::tooljson
