// trace-check: validates a Chrome trace-event JSON file produced by
// idem-load --trace-out (or any src/obs/chrome_trace.cpp output).
//
//   trace-check trace.json [--min-requests N]
//
// Checks, in order:
//   1. the file is well-formed JSON (self-contained recursive-descent
//      parser; no external dependency),
//   2. the root object has a "traceEvents" array whose entries carry the
//      fields Perfetto needs (ph/pid/tid/ts, plus cat/id/name for async
//      events),
//   3. async begins and ends balance per (cat, id) key — never negative,
//      all closed at end of file,
//   4. at least --min-requests distinct "request" lifecycle spans exist.
//
// Exit code 0 on success, 1 on validation failure, 2 on usage/IO errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON document model + recursive-descent parser.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const char* key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  Parser(const char* data, std::size_t size) : pos_(data), end_(data + size) {}

  bool parse(JsonValue& out) {
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != end_) return fail("trailing garbage after document");
    return true;
  }

  const std::string& error() const { return error_; }
  std::size_t offset(const char* base) const { return static_cast<std::size_t>(pos_ - base); }

 private:
  bool fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  void skip_ws() {
    while (pos_ != end_ &&
           (*pos_ == ' ' || *pos_ == '\t' || *pos_ == '\n' || *pos_ == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* text) {
    std::size_t len = std::strlen(text);
    if (static_cast<std::size_t>(end_ - pos_) < len || std::memcmp(pos_, text, len) != 0) {
      return fail("invalid literal");
    }
    pos_ += len;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ == end_) return fail("unexpected end of input");
    switch (*pos_) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::String;
        return parse_string(out.string);
      case 't': out.kind = JsonValue::Kind::Bool; out.boolean = true; return literal("true");
      case 'f': out.kind = JsonValue::Kind::Bool; out.boolean = false; return literal("false");
      case 'n': out.kind = JsonValue::Kind::Null; return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ != end_ && *pos_ == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (pos_ == end_ || *pos_ != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ == end_ || *pos_ != ':') return fail("expected ':' after key");
      ++pos_;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ == end_) return fail("unterminated object");
      if (*pos_ == ',') { ++pos_; continue; }
      if (*pos_ == '}') { ++pos_; return true; }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ != end_ && *pos_ == ']') { ++pos_; return true; }
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ == end_) return fail("unterminated array");
      if (*pos_ == ',') { ++pos_; continue; }
      if (*pos_ == ']') { ++pos_; return true; }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ != end_) {
      char c = *pos_++;
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char in string");
      if (c != '\\') { out.push_back(c); continue; }
      if (pos_ == end_) break;
      char esc = *pos_++;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (end_ - pos_ < 4) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *pos_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // The exporter never emits non-ASCII; decode BMP code points as
          // UTF-8 so the checker still accepts hand-edited files.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const char* start = pos_;
    if (pos_ != end_ && *pos_ == '-') ++pos_;
    while (pos_ != end_ && ((*pos_ >= '0' && *pos_ <= '9') || *pos_ == '.' ||
                            *pos_ == 'e' || *pos_ == 'E' || *pos_ == '+' || *pos_ == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    std::string text(start, pos_);
    char* parsed_end = nullptr;
    out.number = std::strtod(text.c_str(), &parsed_end);
    if (parsed_end == nullptr || *parsed_end != '\0') return fail("malformed number");
    out.kind = JsonValue::Kind::Number;
    return true;
  }

  const char* pos_;
  const char* end_;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Trace-level validation.

int validate(const JsonValue& root, std::size_t min_requests) {
  if (root.kind != JsonValue::Kind::Object) {
    std::fprintf(stderr, "FAIL: root is not an object\n");
    return 1;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::Array) {
    std::fprintf(stderr, "FAIL: missing \"traceEvents\" array\n");
    return 1;
  }

  // open count per async key "cat\x1fid"; request ids seen via begin events.
  std::map<std::string, long> open;
  std::map<std::string, std::size_t> span_names;
  std::size_t begins = 0, ends = 0, instants = 0, metadata = 0, requests = 0;
  double last_ts = -1;

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    auto complain = [&](const char* what) {
      std::fprintf(stderr, "FAIL: traceEvents[%zu]: %s\n", i, what);
      return 1;
    };
    if (ev.kind != JsonValue::Kind::Object) return complain("not an object");
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::String || ph->string.size() != 1) {
      return complain("missing \"ph\"");
    }
    char phase = ph->string[0];
    if (phase == 'M') { ++metadata; continue; }
    if (phase != 'b' && phase != 'e' && phase != 'n') return complain("unexpected phase");

    const JsonValue* cat = ev.find("cat");
    const JsonValue* id = ev.find("id");
    const JsonValue* name = ev.find("name");
    const JsonValue* ts = ev.find("ts");
    const JsonValue* pid = ev.find("pid");
    const JsonValue* tid = ev.find("tid");
    if (cat == nullptr || cat->kind != JsonValue::Kind::String) return complain("missing \"cat\"");
    if (id == nullptr || id->kind != JsonValue::Kind::String) return complain("missing \"id\"");
    if (name == nullptr || name->kind != JsonValue::Kind::String) {
      return complain("missing \"name\"");
    }
    if (ts == nullptr || ts->kind != JsonValue::Kind::Number || ts->number < 0) {
      return complain("missing or negative \"ts\"");
    }
    if (pid == nullptr || pid->kind != JsonValue::Kind::Number ||
        tid == nullptr || tid->kind != JsonValue::Kind::Number) {
      return complain("missing \"pid\"/\"tid\"");
    }
    if (ts->number > last_ts) last_ts = ts->number;

    std::string key = cat->string + '\x1f' + id->string;
    if (phase == 'b') {
      ++begins;
      if (++open[key] > 1) return complain("duplicate begin for an open async id");
      ++span_names[name->string];
      if (name->string == "request") ++requests;
    } else if (phase == 'e') {
      ++ends;
      auto it = open.find(key);
      if (it == open.end() || it->second <= 0) return complain("end without matching begin");
      --it->second;
    } else {
      ++instants;
    }
  }

  std::size_t unclosed = 0;
  for (const auto& [key, depth] : open) {
    if (depth != 0) ++unclosed;
  }
  if (unclosed != 0) {
    std::fprintf(stderr, "FAIL: %zu async spans left open at end of trace\n", unclosed);
    return 1;
  }
  if (begins != ends) {
    std::fprintf(stderr, "FAIL: %zu begins vs %zu ends\n", begins, ends);
    return 1;
  }
  if (requests < min_requests) {
    std::fprintf(stderr, "FAIL: %zu request spans, expected at least %zu\n", requests,
                 min_requests);
    return 1;
  }

  std::printf("OK: %zu events (%zu spans, %zu instants, %zu metadata), last ts %.3f us\n",
              events->array.size(), begins, instants, metadata, last_ts);
  for (const auto& [name, count] : span_names) {
    std::printf("  %-12s %zu\n", name.c_str(), count);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::size_t min_requests = 0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--min-requests") && i + 1 < argc) {
      min_requests = std::strtoul(argv[++i], nullptr, 10);
    } else if (argv[i][0] != '-' && path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s <trace.json> [--min-requests N]\n", argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s <trace.json> [--min-requests N]\n", argv[0]);
    return 2;
  }

  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  std::string data;
  char buffer[1 << 16];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, f)) > 0) data.append(buffer, got);
  std::fclose(f);

  JsonValue root;
  Parser parser(data.data(), data.size());
  if (!parser.parse(root)) {
    std::fprintf(stderr, "FAIL: JSON parse error at byte %zu: %s\n",
                 parser.offset(data.data()), parser.error().c_str());
    return 1;
  }
  return validate(root, min_requests);
}
