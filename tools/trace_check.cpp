// trace-check: validates a Chrome trace-event JSON file produced by
// idem-load --trace-out (or any src/obs/chrome_trace.cpp output).
//
//   trace-check trace.json [--min-requests N]
//   trace-check --metrics metrics.jsonl
//
// Trace checks, in order:
//   1. the file is well-formed JSON (tools/json_util.hpp recursive-descent
//      parser; no external dependency),
//   2. the root object has a "traceEvents" array whose entries carry the
//      fields Perfetto needs (ph/pid/tid/ts, plus cat/id/name for async
//      events),
//   3. async begins and ends balance per (cat, id) key — never negative,
//      all closed at end of file,
//   4. "rejected" / "reject_seen" instants carry a rejection reason from
//      the taxonomy (a replica's own verdict is never "none"; a client may
//      see "none" from a reason-less REJECT),
//   5. at least --min-requests distinct "request" lifecycle spans exist.
//
// --metrics instead validates a metrics JSONL export (obs sampling, bench
// IDEM_BENCH_METRICS_OUT): every line a JSON object with a non-decreasing
// numeric "t_ms" and numeric (or null) series values.
//
// Exit code 0 on success, 1 on validation failure, 2 on usage/IO errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "json_util.hpp"

namespace {

using idem::tooljson::JsonValue;

// Mirrors common/reject_reason.hpp to_label(); kept literal so the checker
// stays dependency-free (a new reason must be added in both places).
constexpr const char* kReasonLabels[] = {
    "none",           "rt-queue-full",   "rejected-cache-hit",
    "backpressure-shed", "oversized-frame", "view-change-in-progress",
};

bool known_reason(const std::string& label) {
  for (const char* known : kReasonLabels) {
    if (label == known) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Trace-level validation.

int validate(const JsonValue& root, std::size_t min_requests) {
  if (root.kind != JsonValue::Kind::Object) {
    std::fprintf(stderr, "FAIL: root is not an object\n");
    return 1;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::Array) {
    std::fprintf(stderr, "FAIL: missing \"traceEvents\" array\n");
    return 1;
  }

  // open count per async key "cat\x1fid"; request ids seen via begin events.
  std::map<std::string, long> open;
  std::map<std::string, std::size_t> span_names;
  std::size_t begins = 0, ends = 0, instants = 0, metadata = 0, requests = 0;
  double last_ts = -1;

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    auto complain = [&](const char* what) {
      std::fprintf(stderr, "FAIL: traceEvents[%zu]: %s\n", i, what);
      return 1;
    };
    if (ev.kind != JsonValue::Kind::Object) return complain("not an object");
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::String || ph->string.size() != 1) {
      return complain("missing \"ph\"");
    }
    char phase = ph->string[0];
    if (phase == 'M') { ++metadata; continue; }
    if (phase != 'b' && phase != 'e' && phase != 'n') return complain("unexpected phase");

    const JsonValue* cat = ev.find("cat");
    const JsonValue* id = ev.find("id");
    const JsonValue* name = ev.find("name");
    const JsonValue* ts = ev.find("ts");
    const JsonValue* pid = ev.find("pid");
    const JsonValue* tid = ev.find("tid");
    if (cat == nullptr || cat->kind != JsonValue::Kind::String) return complain("missing \"cat\"");
    if (id == nullptr || id->kind != JsonValue::Kind::String) return complain("missing \"id\"");
    if (name == nullptr || name->kind != JsonValue::Kind::String) {
      return complain("missing \"name\"");
    }
    if (ts == nullptr || ts->kind != JsonValue::Kind::Number || ts->number < 0) {
      return complain("missing or negative \"ts\"");
    }
    if (pid == nullptr || pid->kind != JsonValue::Kind::Number ||
        tid == nullptr || tid->kind != JsonValue::Kind::Number) {
      return complain("missing \"pid\"/\"tid\"");
    }
    if (ts->number > last_ts) last_ts = ts->number;

    std::string key = cat->string + '\x1f' + id->string;
    if (phase == 'b') {
      ++begins;
      if (++open[key] > 1) return complain("duplicate begin for an open async id");
      ++span_names[name->string];
      if (name->string == "request") ++requests;
    } else if (phase == 'e') {
      ++ends;
      auto it = open.find(key);
      if (it == open.end() || it->second <= 0) return complain("end without matching begin");
      --it->second;
    } else {
      ++instants;
      if (name->string == "rejected" || name->string == "reject_seen") {
        const JsonValue* args = ev.find("args");
        const JsonValue* reason =
            args != nullptr && args->kind == JsonValue::Kind::Object ? args->find("reason")
                                                                     : nullptr;
        if (reason == nullptr || reason->kind != JsonValue::Kind::String ||
            !known_reason(reason->string)) {
          return complain("rejection instant without a taxonomy reason");
        }
        // A replica recording its own verdict always knows why; only a
        // client facing a reason-less (legacy) REJECT may see "none".
        if (name->string == "rejected" && reason->string == "none") {
          return complain("\"rejected\" verdict with reason \"none\"");
        }
      }
    }
  }

  std::size_t unclosed = 0;
  for (const auto& [key, depth] : open) {
    if (depth != 0) ++unclosed;
  }
  if (unclosed != 0) {
    std::fprintf(stderr, "FAIL: %zu async spans left open at end of trace\n", unclosed);
    return 1;
  }
  if (begins != ends) {
    std::fprintf(stderr, "FAIL: %zu begins vs %zu ends\n", begins, ends);
    return 1;
  }
  if (requests < min_requests) {
    std::fprintf(stderr, "FAIL: %zu request spans, expected at least %zu\n", requests,
                 min_requests);
    return 1;
  }

  std::printf("OK: %zu events (%zu spans, %zu instants, %zu metadata), last ts %.3f us\n",
              events->array.size(), begins, instants, metadata, last_ts);
  for (const auto& [name, count] : span_names) {
    std::printf("  %-12s %zu\n", name.c_str(), count);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Metrics JSONL validation (--metrics).

int validate_metrics(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  std::string line;
  std::size_t lineno = 0, rows = 0, columns = 0;
  double last_t = -1;
  int c;
  while (true) {
    c = std::fgetc(f);
    if (c != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    ++lineno;
    if (!line.empty()) {
      idem::tooljson::Parser parser(line.data(), line.size());
      JsonValue row;
      auto complain = [&](const char* what) {
        std::fprintf(stderr, "FAIL: %s:%zu: %s\n", path, lineno, what);
        std::fclose(f);
        return 1;
      };
      if (!parser.parse(row)) return complain(parser.error().c_str());
      if (row.kind != JsonValue::Kind::Object) return complain("line is not a JSON object");
      const JsonValue* t = row.find("t_ms");
      if (t == nullptr || t->kind != JsonValue::Kind::Number) {
        return complain("missing numeric \"t_ms\"");
      }
      if (t->number < last_t) return complain("\"t_ms\" went backwards");
      last_t = t->number;
      for (const auto& [key, value] : row.object) {
        if (value.kind != JsonValue::Kind::Number && value.kind != JsonValue::Kind::Null) {
          return complain("non-numeric series value");
        }
      }
      columns = std::max(columns, row.object.size() - 1);
      ++rows;
      line.clear();
    }
    if (c == EOF) break;
  }
  std::fclose(f);
  if (rows == 0) {
    std::fprintf(stderr, "FAIL: %s: no samples\n", path);
    return 1;
  }
  std::printf("OK: %zu samples, %zu series, last t %.1f ms\n", rows, columns, last_t);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::size_t min_requests = 0;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--min-requests") && i + 1 < argc) {
      min_requests = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--metrics")) {
      metrics = true;
    } else if (argv[i][0] != '-' && path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s <trace.json> [--min-requests N]\n"
                   "       %s --metrics <metrics.jsonl>\n",
                   argv[0], argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s <trace.json> [--min-requests N]\n"
                 "       %s --metrics <metrics.jsonl>\n",
                 argv[0], argv[0]);
    return 2;
  }
  if (metrics) return validate_metrics(path);

  JsonValue root;
  std::string error;
  if (!idem::tooljson::parse_file(path, root, error)) {
    if (error == "cannot open file") {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 2;
    }
    std::fprintf(stderr, "FAIL: JSON %s\n", error.c_str());
    return 1;
  }
  return validate(root, min_requests);
}
