// idem-load: command-line load generator for any protocol in this
// repository. Runs one configurable closed-loop experiment and prints a
// summary table (and optionally the timeline and CSV).
//
//   idem-load --protocol idem --clients 200 --seconds 10 --rt 50
//   idem-load --protocol paxos --clients 100 --crash-leader-at 5
//   idem-load --protocol idem --loss 0.1 --timeline
//
// Exit code 0 on success, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "harness/driver.hpp"
#include "harness/table.hpp"
#include "obs/chrome_trace.hpp"

using namespace idem;

namespace {

struct Options {
  harness::Protocol protocol = harness::Protocol::Idem;
  std::size_t clients = 50;
  std::size_t reject_threshold = 50;
  double seconds = 5.0;
  double warmup = 1.0;
  std::uint64_t seed = 1;
  double loss = 0.0;
  std::optional<double> crash_leader_at;
  std::optional<double> crash_follower_at;
  bool timeline = false;
  bool csv = false;
  std::string trace_out;    ///< Chrome trace-event JSON (Perfetto-loadable)
  std::string metrics_out;  ///< JSONL metrics samples
  double metrics_interval = 0.1;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --protocol P       idem | idem-nopr | idem-noaqm | paxos | paxos-lbr |\n"
      "                     smart | smart-pr              (default: idem)\n"
      "  --clients N        closed-loop clients           (default: 50)\n"
      "  --rt N             reject threshold r            (default: 50)\n"
      "  --seconds S        measured seconds              (default: 5)\n"
      "  --warmup S         warm-up seconds               (default: 1)\n"
      "  --seed N           experiment seed               (default: 1)\n"
      "  --loss P           message drop probability      (default: 0)\n"
      "  --crash-leader-at S    crash the leader S seconds into the run\n"
      "  --crash-follower-at S  crash a follower S seconds into the run\n"
      "  --timeline         print the 500 ms reply/reject timeline\n"
      "  --csv              print the summary as CSV\n"
      "  --trace-out F      write a Chrome/Perfetto trace-event JSON to F\n"
      "  --metrics-out F    write sampled per-replica metrics (JSONL) to F\n"
      "  --metrics-interval S   metrics sample period in seconds (default: 0.1)\n",
      argv0);
}

std::optional<harness::Protocol> parse_protocol(const char* name) {
  if (!std::strcmp(name, "idem")) return harness::Protocol::Idem;
  if (!std::strcmp(name, "idem-nopr")) return harness::Protocol::IdemNoPR;
  if (!std::strcmp(name, "idem-noaqm")) return harness::Protocol::IdemNoAQM;
  if (!std::strcmp(name, "paxos")) return harness::Protocol::Paxos;
  if (!std::strcmp(name, "paxos-lbr")) return harness::Protocol::PaxosLBR;
  if (!std::strcmp(name, "smart")) return harness::Protocol::Smart;
  if (!std::strcmp(name, "smart-pr")) return harness::Protocol::SmartPR;
  return std::nullopt;
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--protocol")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      auto protocol = parse_protocol(v);
      if (!protocol) return std::nullopt;
      options.protocol = *protocol;
    } else if (!std::strcmp(argv[i], "--clients")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.clients = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(argv[i], "--rt")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.reject_threshold = std::strtoul(v, nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seconds")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.seconds = std::atof(v);
    } else if (!std::strcmp(argv[i], "--warmup")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.warmup = std::atof(v);
    } else if (!std::strcmp(argv[i], "--seed")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(argv[i], "--loss")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.loss = std::atof(v);
    } else if (!std::strcmp(argv[i], "--crash-leader-at")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.crash_leader_at = std::atof(v);
    } else if (!std::strcmp(argv[i], "--crash-follower-at")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.crash_follower_at = std::atof(v);
    } else if (!std::strcmp(argv[i], "--timeline")) {
      options.timeline = true;
    } else if (!std::strcmp(argv[i], "--csv")) {
      options.csv = true;
    } else if (!std::strcmp(argv[i], "--trace-out")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.trace_out = v;
    } else if (!std::strcmp(argv[i], "--metrics-out")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.metrics_out = v;
    } else if (!std::strcmp(argv[i], "--metrics-interval")) {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.metrics_interval = std::atof(v);
    } else {
      return std::nullopt;
    }
  }
  if (options.clients == 0 || options.seconds <= 0) return std::nullopt;
  if (!options.metrics_out.empty() && options.metrics_interval <= 0) return std::nullopt;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = parse_args(argc, argv);
  if (!options) {
    usage(argv[0]);
    return 2;
  }

  harness::ClusterConfig config;
  config.protocol = options->protocol;
  config.clients = options->clients;
  config.reject_threshold = options->reject_threshold;
  config.seed = options->seed;
  config.network.drop_probability = options->loss;
  config.obs.trace = !options->trace_out.empty();
  if (!options->metrics_out.empty()) {
    config.obs.metrics_interval =
        static_cast<Duration>(options->metrics_interval * kSecond);
  }
  harness::Cluster cluster(config);

  harness::DriverConfig driver;
  driver.warmup = static_cast<Duration>(options->warmup * kSecond);
  driver.measure = static_cast<Duration>(options->seconds * kSecond);

  sim::FaultPlan crash_plan;
  if (options->crash_leader_at) {
    crash_plan.add(sim::Fault::crash(static_cast<Time>(*options->crash_leader_at * kSecond),
                                     sim::Fault::kLeader));
  }
  if (options->crash_follower_at) {
    crash_plan.add(sim::Fault::crash(
        static_cast<Time>(*options->crash_follower_at * kSecond), sim::Fault::kFollower));
  }
  if (!crash_plan.empty()) cluster.apply(crash_plan);

  harness::ClosedLoopDriver loop(cluster, driver);
  harness::RunMetrics metrics = loop.run();

  harness::Table table({"metric", "value"});
  table.add_row({"protocol", harness::protocol_name(options->protocol)});
  table.add_row({"clients", harness::Table::fmt(std::uint64_t(options->clients))});
  table.add_row({"throughput [kreq/s]", harness::Table::fmt(metrics.reply_throughput() / 1000.0)});
  table.add_row({"latency mean [ms]", harness::Table::fmt(metrics.reply_latency_ms(), 3)});
  table.add_row({"latency stddev [ms]", harness::Table::fmt(metrics.reply_latency_stddev_ms(), 3)});
  table.add_row({"latency p50 [ms]", harness::Table::fmt(metrics.reply_p50_ms(), 3)});
  table.add_row({"latency p90 [ms]", harness::Table::fmt(metrics.reply_p90_ms(), 3)});
  table.add_row({"latency p99 [ms]", harness::Table::fmt(metrics.reply_p99_ms(), 3)});
  table.add_row({"latency p99.9 [ms]", harness::Table::fmt(metrics.reply_p999_ms(), 3)});
  table.add_row({"rejects [kreq/s]", harness::Table::fmt(metrics.reject_throughput() / 1000.0, 2)});
  table.add_row({"reject latency [ms]", harness::Table::fmt(metrics.reject_latency_ms(), 3)});
  table.add_row({"timeouts", harness::Table::fmt(metrics.timeouts)});
  table.add_row({"client traffic [MB]",
                 harness::Table::fmt(static_cast<double>(metrics.client_traffic.bytes) / 1e6, 1)});
  table.add_row({"replica traffic [MB]",
                 harness::Table::fmt(static_cast<double>(metrics.replica_traffic.bytes) / 1e6, 1)});
  if (options->csv) {
    table.print_csv();
  } else {
    table.print();
  }

  if (options->timeline) {
    std::printf("\ntimeline (500 ms buckets):\n");
    harness::Table timeline({"t[s]", "reply[kreq/s]", "latency[ms]", "reject[kreq/s]"});
    auto replies = metrics.reply_series.rows();
    auto rejects = metrics.reject_series.rows();
    Duration window = metrics.reply_series.window();
    std::size_t per_bucket = static_cast<std::size_t>((500 * kMillisecond) / window);
    std::size_t rows = std::max(replies.size(), rejects.size());
    for (std::size_t start = 0; start < rows; start += per_bucket) {
      std::uint64_t reply_count = 0, reject_count = 0;
      double latency_sum = 0;
      for (std::size_t i = start; i < std::min(start + per_bucket, rows); ++i) {
        if (i < replies.size()) {
          reply_count += replies[i].count;
          latency_sum += replies[i].value_sum;
        }
        if (i < rejects.size()) reject_count += rejects[i].count;
      }
      timeline.add_row(
          {harness::Table::fmt(to_sec(static_cast<Time>(start) * window), 1),
           harness::Table::fmt(reply_count / 0.5 / 1000.0),
           harness::Table::fmt(reply_count ? latency_sum / reply_count : 0.0, 3),
           harness::Table::fmt(reject_count / 0.5 / 1000.0, 2)});
    }
    if (options->csv) {
      timeline.print_csv();
    } else {
      timeline.print();
    }
  }

  if (!options->trace_out.empty()) {
    FILE* f = std::fopen(options->trace_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", options->trace_out.c_str());
      return 1;
    }
    obs::TraceRecorder* recorder = cluster.trace();
    obs::ChromeTraceStats stats = obs::write_chrome_trace(f, recorder->snapshot());
    std::fclose(f);
    std::fprintf(stderr, "trace: %llu events (%llu overwritten) -> %s: %llu spans, %llu instants\n",
                 static_cast<unsigned long long>(recorder->total_recorded()),
                 static_cast<unsigned long long>(recorder->overwritten()),
                 options->trace_out.c_str(),
                 static_cast<unsigned long long>(stats.spans),
                 static_cast<unsigned long long>(stats.instants));
  }
  if (!options->metrics_out.empty()) {
    FILE* f = std::fopen(options->metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", options->metrics_out.c_str());
      return 1;
    }
    cluster.metrics()->write_jsonl(f);
    std::fclose(f);
    std::fprintf(stderr, "metrics: %zu samples x %zu series -> %s\n",
                 cluster.metrics()->rows(), cluster.metrics()->series_count(),
                 options->metrics_out.c_str());
  }
  return 0;
}
