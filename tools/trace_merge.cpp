// trace_merge: stitch per-process Chrome trace exports into one timeline.
//
// A multi-process deployment (N idem_server processes + idem_client)
// exports one trace document per process, each with timestamps relative
// to its own epoch. Every real-mode export carries its CLOCK_REALTIME
// anchor in otherData.realtime_anchor_ns (the wall-clock instant of its
// trace time 0), so the documents can be aligned: the earliest anchor
// becomes the merged origin and every other document's events shift
// forward by its anchor delta. The result is a single Perfetto-loadable
// document where a request's client→leader→follower path reads across
// process tracks on one clock.
//
// Track identity is preserved: each process records only its own node's
// events (server i uses pid i, clients use the client address base), so
// pids stay disjoint; process_name metadata is prefixed with the source
// process label for disambiguation in the UI.
//
// Usage: trace_merge -o merged.json server0.json server1.json ... client.json
//
// Exit status: 0 on success, 1 on malformed input, 2 on usage errors.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "json_util.hpp"

using idem::tooljson::JsonValue;

namespace {

JsonValue* find_mutable(JsonValue& object, const char* key) {
  for (auto& [k, v] : object.object) {
    if (k == key) return &v;
  }
  return nullptr;
}

struct Input {
  std::string path;
  std::string label;
  long long anchor_ns = 0;  ///< 0 = no anchor (sim export): left unshifted
  JsonValue document;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  std::vector<const char*> in_paths;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-o") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--help")) {
      std::printf("usage: %s -o merged.json trace1.json trace2.json ...\n", argv[0]);
      return 0;
    } else {
      in_paths.push_back(argv[i]);
    }
  }
  if (out_path == nullptr || in_paths.size() < 2) {
    std::fprintf(stderr, "usage: %s -o merged.json trace1.json trace2.json ...\n", argv[0]);
    return 2;
  }

  std::vector<Input> inputs;
  long long base_anchor = 0;
  for (const char* path : in_paths) {
    Input input;
    input.path = path;
    std::string error;
    if (!idem::tooljson::parse_file(path, input.document, error)) {
      std::fprintf(stderr, "trace_merge: %s: %s\n", path, error.c_str());
      return 1;
    }
    if (input.document.kind != JsonValue::Kind::Object ||
        input.document.find("traceEvents") == nullptr) {
      std::fprintf(stderr, "trace_merge: %s: not a Chrome trace document\n", path);
      return 1;
    }
    input.label = path;
    if (const JsonValue* other = input.document.find("otherData");
        other != nullptr && other->kind == JsonValue::Kind::Object) {
      if (const JsonValue* process = other->find("process");
          process != nullptr && process->kind == JsonValue::Kind::String) {
        input.label = process->string;
      }
      if (const JsonValue* anchor = other->find("realtime_anchor_ns");
          anchor != nullptr && anchor->kind == JsonValue::Kind::Number) {
        input.anchor_ns = static_cast<long long>(anchor->number);
      }
    }
    if (input.anchor_ns == 0) {
      std::fprintf(stderr,
                   "trace_merge: warning: %s has no realtime anchor (sim export?);"
                   " its timestamps are taken as already aligned\n",
                   path);
    } else if (base_anchor == 0 || input.anchor_ns < base_anchor) {
      base_anchor = input.anchor_ns;
    }
    inputs.push_back(std::move(input));
  }

  // Collect all events, shifting each document onto the merged origin.
  std::vector<JsonValue> metadata;  ///< ph "M" events lead the output
  std::vector<JsonValue> events;
  for (Input& input : inputs) {
    double shift_us =
        input.anchor_ns == 0 ? 0.0
                             : static_cast<double>(input.anchor_ns - base_anchor) / 1000.0;
    JsonValue* trace_events = find_mutable(input.document, "traceEvents");
    for (JsonValue& ev : trace_events->array) {
      if (ev.kind != JsonValue::Kind::Object) continue;
      const JsonValue* ph = ev.find("ph");
      bool is_meta = ph != nullptr && ph->string == "M";
      if (is_meta) {
        // Prefix the track name with the source process so identical node
        // labels from different processes stay tellable apart.
        if (JsonValue* args = find_mutable(ev, "args")) {
          if (JsonValue* name = find_mutable(*args, "name")) {
            name->string = input.label + ": " + name->string;
          }
        }
        metadata.push_back(std::move(ev));
        continue;
      }
      if (JsonValue* ts = find_mutable(ev, "ts")) ts->number += shift_us;
      events.push_back(std::move(ev));
    }
  }
  std::stable_sort(events.begin(), events.end(), [](const JsonValue& a, const JsonValue& b) {
    const JsonValue* ta = a.find("ts");
    const JsonValue* tb = b.find("ts");
    return (ta != nullptr ? ta->number : 0) < (tb != nullptr ? tb->number : 0);
  });

  JsonValue merged;
  merged.kind = JsonValue::Kind::Object;
  JsonValue unit;
  unit.kind = JsonValue::Kind::String;
  unit.string = "ms";
  merged.object.emplace_back("displayTimeUnit", std::move(unit));
  JsonValue all;
  all.kind = JsonValue::Kind::Array;
  all.array = std::move(metadata);
  for (JsonValue& ev : events) all.array.push_back(std::move(ev));
  std::size_t total = all.array.size();
  merged.object.emplace_back("traceEvents", std::move(all));
  JsonValue other;
  other.kind = JsonValue::Kind::Object;
  JsonValue n_inputs;
  n_inputs.kind = JsonValue::Kind::Number;
  n_inputs.number = static_cast<double>(inputs.size());
  other.object.emplace_back("merged_from", std::move(n_inputs));
  JsonValue base;
  base.kind = JsonValue::Kind::Number;
  base.number = static_cast<double>(base_anchor);
  other.object.emplace_back("base_anchor_ns", std::move(base));
  merged.object.emplace_back("otherData", std::move(other));

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "trace_merge: cannot write %s\n", out_path);
    return 1;
  }
  idem::tooljson::write_json(out, merged);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("trace_merge: %zu inputs, %zu events -> %s\n", inputs.size(), total, out_path);
  return 0;
}
