// Shared pieces of the CLI load drivers (idem_client, storm_client):
// argv option-value scanning, replica-address collection, YCSB workload
// lookup by letter, and the throughput/latency report block. Header-only
// on purpose — these are two small mains and a library target would
// outweigh the code.
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "app/ycsb.hpp"
#include "real/load.hpp"
#include "rpc/tcp_transport.hpp"

namespace idem::cli {

/// Scans the value of a "--flag VALUE" option: advances `i` past the
/// value and returns it, or nullptr when the flag is last on the line
/// (the caller bails to usage()).
inline const char* next_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) return nullptr;
  return argv[++i];
}

/// Parses one --replica operand, printing the usage error on failure.
inline std::optional<rpc::PeerAddress> parse_replica(const char* argv0, const char* text) {
  auto address = rpc::parse_address(text);
  if (!address.has_value()) {
    std::fprintf(stderr, "%s: bad --replica address '%s'\n", argv0, text);
  }
  return address;
}

/// YCSB workload presets by their customary letter names.
inline std::optional<app::YcsbConfig> workload_by_name(const std::string& name) {
  if (name == "a") return app::YcsbConfig::update_heavy();
  if (name == "b") return app::YcsbConfig::read_heavy();
  if (name == "c") return app::YcsbConfig::read_only();
  return std::nullopt;
}

/// Whole-file read (shard map files); nullopt with a message on failure.
inline std::optional<std::string> read_file(const char* argv0, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot read %s\n", argv0, path.c_str());
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

/// One "p50 .. | p90 .. | p99 .. | p99.9 .." percentile line.
inline void print_percentile_line(const char* label, const Histogram& h) {
  std::printf("  %-11s: p50 %.3f ms | p90 %.3f ms | p99 %.3f ms | p99.9 %.3f ms\n",
              label, to_ms(h.p50()), to_ms(h.p90()), to_ms(h.p99()), to_ms(h.p999()));
}

/// The standard end-of-run report: throughput, outcome counts, reply and
/// rejection latency percentiles. Shared by idem_client's flat and
/// sharded paths (the sharded stats embed the same real::LoadStats).
inline void print_load_report(const real::LoadStats& stats) {
  std::printf("\n  throughput : %8.1f replies/s, %8.1f rejects/s\n",
              stats.reply_rate(), stats.reject_rate());
  std::printf("  outcomes   : %llu replies, %llu rejects, %llu timeouts"
              " (%llu issued, %llu malformed)\n",
              static_cast<unsigned long long>(stats.replies),
              static_cast<unsigned long long>(stats.rejects),
              static_cast<unsigned long long>(stats.timeouts),
              static_cast<unsigned long long>(stats.issued),
              static_cast<unsigned long long>(stats.malformed));
  if (stats.deferred > 0) {
    std::printf("  open loop  : %llu arrivals deferred behind a busy client\n",
                static_cast<unsigned long long>(stats.deferred));
  }
  if (stats.deadline_ops > 0) {
    std::printf("  deadlines  : %llu/%llu replies missed their budget (%.2f%%)\n",
                static_cast<unsigned long long>(stats.deadline_misses),
                static_cast<unsigned long long>(stats.deadline_ops),
                100.0 * stats.deadline_miss_rate());
  }
  if (stats.replies > 0) print_percentile_line("latency", stats.reply_latency);
  if (stats.rejects > 0) {
    std::printf("  rejections : p50 %.3f ms | p99 %.3f ms\n",
                to_ms(stats.reject_latency.p50()), to_ms(stats.reject_latency.p99()));
  }
}

}  // namespace idem::cli
