// Deterministic-replay regression for the simulation kernel.
//
// The kernel contract: identical seeds produce identical simulation traces.
// Runs a short closed-loop experiment twice per protocol and requires the
// metrics — counts, bit-exact latency moments, traffic bytes, and the total
// number of dispatched events — to match exactly. Any nondeterminism in
// event ordering (e.g. an unstable heap tie-break) shows up here.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "harness/cluster.hpp"
#include "harness/driver.hpp"
#include "harness/metrics.hpp"
#include "obs/trace.hpp"

namespace idem::harness {
namespace {

struct Trace {
  std::uint64_t replies = 0;
  std::uint64_t rejects = 0;
  std::uint64_t timeouts = 0;
  double reply_mean = 0;
  double reply_stddev = 0;
  double reply_p99 = 0;
  double reject_mean = 0;
  std::uint64_t client_messages = 0;
  std::uint64_t client_bytes = 0;
  std::uint64_t replica_messages = 0;
  std::uint64_t replica_bytes = 0;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;

  bool operator==(const Trace&) const = default;
};

Trace run_once(Protocol protocol, std::uint64_t seed) {
  ClusterConfig config;
  config.protocol = protocol;
  config.clients = 40;
  config.reject_threshold = 20;
  config.seed = seed;

  DriverConfig driver;
  driver.warmup = 100 * kMillisecond;
  driver.measure = 400 * kMillisecond;

  Cluster cluster(config);
  ClosedLoopDriver loop(cluster, driver);
  RunMetrics metrics = loop.run();

  Trace t;
  t.replies = metrics.replies;
  t.rejects = metrics.rejects;
  t.timeouts = metrics.timeouts;
  t.reply_mean = metrics.reply_latency.mean();
  t.reply_stddev = metrics.reply_latency.stddev();
  t.reply_p99 = static_cast<double>(metrics.reply_latency.p99());
  t.reject_mean = metrics.reject_latency.mean();
  t.client_messages = metrics.client_traffic.messages;
  t.client_bytes = metrics.client_traffic.bytes;
  t.replica_messages = metrics.replica_traffic.messages;
  t.replica_bytes = metrics.replica_traffic.bytes;
  t.events = cluster.simulator().events_executed();
  t.dropped = cluster.network().dropped_messages();
  return t;
}

class DeterminismTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(DeterminismTest, SameSeedSameTrace) {
  Trace first = run_once(GetParam(), 11);
  Trace second = run_once(GetParam(), 11);
  EXPECT_EQ(first, second);
  // The runs did real work (otherwise the comparison is vacuous).
  EXPECT_GT(first.replies, 0u);
  EXPECT_GT(first.events, 1000u);
}

TEST_P(DeterminismTest, DifferentSeedDifferentTrace) {
  Trace first = run_once(GetParam(), 11);
  Trace other = run_once(GetParam(), 12);
  EXPECT_NE(first, other);
}

// The observability layer inherits the kernel contract: two runs with the
// same seed must fill the trace ring with bit-identical events. Needs the
// trace sites compiled in (-DIDEM_TRACE_EVENTS=ON, the default).
#ifndef IDEM_TRACE_OFF
std::vector<obs::TraceEvent> run_traced(Protocol protocol, std::uint64_t seed) {
  ClusterConfig config;
  config.protocol = protocol;
  config.clients = 40;
  config.reject_threshold = 20;
  config.seed = seed;
  config.obs.trace = true;

  DriverConfig driver;
  driver.warmup = 100 * kMillisecond;
  driver.measure = 400 * kMillisecond;

  Cluster cluster(config);
  ClosedLoopDriver loop(cluster, driver);
  loop.run();
  return cluster.trace()->snapshot();
}

TEST_P(DeterminismTest, SameSeedBitIdenticalTraceBuffer) {
  std::vector<obs::TraceEvent> first = run_traced(GetParam(), 11);
  std::vector<obs::TraceEvent> second = run_traced(GetParam(), 11);
  ASSERT_GT(first.size(), 1000u);
  ASSERT_EQ(first.size(), second.size());
  // TraceEvent is trivially copyable with no padding gaps left undefined
  // (the pad field is value-initialized), so memcmp is exact.
  EXPECT_EQ(std::memcmp(first.data(), second.data(), first.size() * sizeof(obs::TraceEvent)),
            0);
}
#endif  // IDEM_TRACE_OFF

INSTANTIATE_TEST_SUITE_P(AllProtocols, DeterminismTest,
                         ::testing::Values(Protocol::Idem, Protocol::Paxos, Protocol::Smart),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           switch (info.param) {
                             case Protocol::Idem: return std::string("Idem");
                             case Protocol::Paxos: return std::string("Paxos");
                             default: return std::string("Smart");
                           }
                         });

}  // namespace
}  // namespace idem::harness
