// Focused unit tests for the client implementations: IDEM's
// pessimistic/optimistic strategies and timing (Section 5.3), the
// ambivalence warning hook, retransmission, and the Paxos client's
// leader fail-over.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "consensus/messages.hpp"
#include "idem/client.hpp"
#include "paxos/client.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace idem {
namespace {

/// A scriptable fake replica: records incoming requests and answers with
/// whatever the test tells it to.
class FakeReplica final : public sim::Node {
 public:
  FakeReplica(sim::Simulator& sim, sim::SimNetwork& net, ReplicaId id)
      : sim::Node(sim, net, consensus::replica_address(id), sim::NodeKind::Replica),
        me_(id) {}

  enum class Behavior { Silent, Reject, Reply };
  Behavior behavior = Behavior::Silent;
  Duration response_delay = 0;
  std::vector<RequestId> seen;

  /// Replays a reply for an old operation (tests stale-reply filtering).
  void send_stale_reply(RequestId id, sim::NodeId client) {
    send(client, std::make_shared<const msg::Reply>(id, std::vector<std::byte>{}));
  }

 protected:
  void on_message(sim::NodeId from, const sim::Payload& message) override {
    const auto* request = dynamic_cast<const msg::Request*>(&message);
    if (request == nullptr) return;
    seen.push_back(request->id);
    sim::NodeId client = from;
    RequestId id = request->id;
    Behavior what = behavior;
    set_timer(response_delay, [this, client, id, what] {
      switch (what) {
        case Behavior::Silent:
          break;
        case Behavior::Reject:
          send(client, std::make_shared<const msg::Reject>(id));
          break;
        case Behavior::Reply:
          send(client, std::make_shared<const msg::Reply>(id, std::vector<std::byte>{}));
          break;
      }
    });
  }

 private:
  ReplicaId me_;
};

struct ClientFixture {
  sim::Simulator sim{5};
  sim::NetworkConfig net_config;
  std::unique_ptr<sim::SimNetwork> net;
  std::vector<std::unique_ptr<FakeReplica>> replicas;

  ClientFixture() {
    net_config.jitter_mean = 0;  // deterministic timing for assertions
    net = std::make_unique<sim::SimNetwork>(sim, net_config);
    for (std::uint32_t i = 0; i < 3; ++i) {
      replicas.push_back(std::make_unique<FakeReplica>(sim, *net, ReplicaId{i}));
    }
  }

  std::optional<consensus::Outcome> invoke(core::IdemClient& client) {
    std::optional<consensus::Outcome> outcome;
    client.invoke(test::put_cmd("k", "v"),
                  [&](const consensus::Outcome& o) { outcome = o; });
    sim.run_until(sim.now() + 30 * kSecond);
    return outcome;
  }
};

TEST(IdemClientUnit, OptimisticWaitsExactlyTheConfiguredWindow) {
  ClientFixture f;
  // Two rejects arrive promptly; the third replica stays silent. The
  // optimistic client must abort `optimistic_wait` after the 2nd reject.
  f.replicas[0]->behavior = FakeReplica::Behavior::Reject;
  f.replicas[1]->behavior = FakeReplica::Behavior::Reject;
  f.replicas[2]->behavior = FakeReplica::Behavior::Silent;

  core::IdemClientConfig config;
  config.optimistic_wait = 5 * kMillisecond;
  config.retry_interval = 0;  // no retransmission noise
  core::IdemClient client(f.sim, *f.net, ClientId{0}, config);

  auto outcome = f.invoke(client);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Rejected);
  EXPECT_EQ(outcome->rejects_seen, 2u);
  // Latency = one-way + reject + optimistic window, so slightly above 5 ms
  // but nowhere near a generic timeout.
  EXPECT_GE(outcome->latency(), 5 * kMillisecond);
  EXPECT_LT(outcome->latency(), 6 * kMillisecond);
}

TEST(IdemClientUnit, OptimisticSavedByLateReply) {
  ClientFixture f;
  f.replicas[0]->behavior = FakeReplica::Behavior::Reject;
  f.replicas[1]->behavior = FakeReplica::Behavior::Reject;
  f.replicas[2]->behavior = FakeReplica::Behavior::Reply;
  f.replicas[2]->response_delay = 3 * kMillisecond;  // late but within the window

  core::IdemClientConfig config;
  config.optimistic_wait = 5 * kMillisecond;
  core::IdemClient client(f.sim, *f.net, ClientId{0}, config);

  auto outcome = f.invoke(client);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  EXPECT_EQ(outcome->rejects_seen, 2u);
}

TEST(IdemClientUnit, PessimisticAbortsImmediately) {
  ClientFixture f;
  f.replicas[0]->behavior = FakeReplica::Behavior::Reject;
  f.replicas[1]->behavior = FakeReplica::Behavior::Reject;
  f.replicas[2]->behavior = FakeReplica::Behavior::Reply;
  f.replicas[2]->response_delay = 3 * kMillisecond;

  core::IdemClientConfig config;
  config.strategy = core::IdemClientConfig::Strategy::Pessimistic;
  core::IdemClient client(f.sim, *f.net, ClientId{0}, config);

  auto outcome = f.invoke(client);
  ASSERT_TRUE(outcome.has_value());
  // The pessimistic client aborted before the late reply could arrive.
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Rejected);
  EXPECT_LT(outcome->latency(), kMillisecond);
}

TEST(IdemClientUnit, AmbivalenceWarningFiresOnce) {
  ClientFixture f;
  for (auto& replica : f.replicas) replica->behavior = FakeReplica::Behavior::Reject;

  core::IdemClientConfig config;
  config.optimistic_wait = 5 * kMillisecond;
  core::IdemClient client(f.sim, *f.net, ClientId{0}, config);
  int warnings = 0;
  std::size_t rejects_at_warning = 0;
  client.on_ambivalence = [&](std::size_t rejects) {
    ++warnings;
    rejects_at_warning = rejects;
  };

  auto outcome = f.invoke(client);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Rejected);
  // The warning fired exactly once, at the (n-f)th = 2nd reject, before
  // the final (3rd) reject turned ambivalence into definitive failure.
  EXPECT_EQ(warnings, 1);
  EXPECT_EQ(rejects_at_warning, 2u);
  EXPECT_TRUE(outcome->definitive_failure);
}

TEST(IdemClientUnit, AllRejectsShortCircuitsOptimisticWait) {
  ClientFixture f;
  for (auto& replica : f.replicas) replica->behavior = FakeReplica::Behavior::Reject;

  core::IdemClientConfig config;
  config.optimistic_wait = 50 * kMillisecond;
  core::IdemClient client(f.sim, *f.net, ClientId{0}, config);

  auto outcome = f.invoke(client);
  ASSERT_TRUE(outcome.has_value());
  // n rejects = failure state: no point waiting out the optimistic window.
  EXPECT_EQ(outcome->rejects_seen, 3u);
  EXPECT_LT(outcome->latency(), 5 * kMillisecond);
}

TEST(IdemClientUnit, RetransmitsWhenUnanswered) {
  ClientFixture f;
  for (auto& replica : f.replicas) replica->behavior = FakeReplica::Behavior::Silent;

  core::IdemClientConfig config;
  config.retry_interval = 100 * kMillisecond;
  config.operation_timeout = 450 * kMillisecond;
  core::IdemClient client(f.sim, *f.net, ClientId{0}, config);

  auto outcome = f.invoke(client);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Timeout);
  // Initial send + 4 retries before the 450 ms deadline.
  EXPECT_EQ(f.replicas[0]->seen.size(), 5u);
}

TEST(IdemClientUnit, StaleRepliesIgnored) {
  ClientFixture f;
  f.replicas[0]->behavior = FakeReplica::Behavior::Reply;

  core::IdemClient client(f.sim, *f.net, ClientId{0}, {});
  auto first = f.invoke(client);
  ASSERT_TRUE(first.has_value());

  // Second operation: a replica replays the *old* reply (id mismatch);
  // the client must not complete on it.
  f.replicas[0]->behavior = FakeReplica::Behavior::Silent;
  std::optional<consensus::Outcome> second;
  client.invoke(test::put_cmd("k", "v2"),
                [&](const consensus::Outcome& o) { second = o; });
  RequestId stale{ClientId{0}, OpNum{1}};
  f.replicas[0]->send_stale_reply(stale, consensus::client_address(ClientId{0}));
  f.sim.run_until(f.sim.now() + 100 * kMillisecond);
  EXPECT_FALSE(second.has_value());
}

TEST(PaxosClientUnit, CyclesThroughPresumedLeaders) {
  ClientFixture f;
  // Only replica 2 answers; the client must fail over twice to find it.
  f.replicas[2]->behavior = FakeReplica::Behavior::Reply;

  paxos::PaxosClientConfig config;
  config.retry_interval = 100 * kMillisecond;
  paxos::PaxosClient client(f.sim, *f.net, ClientId{0}, config);

  std::optional<consensus::Outcome> outcome;
  client.invoke(test::put_cmd("k", "v"), [&](const consensus::Outcome& o) { outcome = o; });
  f.sim.run_until(f.sim.now() + 10 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  // ~2 fail-over intervals before reaching replica 2.
  EXPECT_GE(outcome->latency(), 200 * kMillisecond);
  EXPECT_EQ(client.presumed_leader(), ReplicaId{2});

  // The next operation goes straight to the known leader.
  std::optional<consensus::Outcome> next;
  client.invoke(test::put_cmd("k", "v2"), [&](const consensus::Outcome& o) { next = o; });
  f.sim.run_until(f.sim.now() + 10 * kSecond);
  ASSERT_TRUE(next.has_value());
  EXPECT_LT(next->latency(), 10 * kMillisecond);
}

}  // namespace
}  // namespace idem
