// Tests for the counter state machine and for running IDEM with an
// application other than the KV store (StateMachine genericity), plus the
// Section 5.3 "probe request" pattern for resolving ambivalence.
#include <gtest/gtest.h>

#include <memory>

#include "app/counter.hpp"
#include "idem/acceptance.hpp"
#include "idem/client.hpp"
#include "idem/replica.hpp"
#include "test_util.hpp"

namespace idem {
namespace {

std::vector<std::byte> add_cmd(const std::string& name, std::int64_t delta) {
  app::CounterCommand cmd;
  cmd.op = app::CounterOp::Add;
  cmd.name = name;
  cmd.delta = delta;
  return cmd.encode();
}

std::vector<std::byte> read_cmd(const std::string& name) {
  app::CounterCommand cmd;
  cmd.op = app::CounterOp::Read;
  cmd.name = name;
  return cmd.encode();
}

TEST(CounterService, AddAndRead) {
  app::CounterService service;
  EXPECT_EQ(app::CounterService::decode_value(service.execute(add_cmd("x", 5))), 5);
  EXPECT_EQ(app::CounterService::decode_value(service.execute(add_cmd("x", -2))), 3);
  EXPECT_EQ(app::CounterService::decode_value(service.execute(read_cmd("x"))), 3);
  EXPECT_EQ(app::CounterService::decode_value(service.execute(read_cmd("missing"))), 0);
}

TEST(CounterService, SnapshotRestore) {
  app::CounterService a;
  a.execute(add_cmd("hits", 100));
  a.execute(add_cmd("misses", 7));
  app::CounterService b;
  b.execute(add_cmd("stale", 1));
  b.restore(a.snapshot());
  EXPECT_EQ(app::CounterService::decode_value(b.execute(read_cmd("hits"))), 100);
  EXPECT_EQ(app::CounterService::decode_value(b.execute(read_cmd("stale"))), 0);
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

/// Builds a 3-replica IDEM cluster running the counter service.
struct CounterCluster {
  sim::Simulator sim{29};
  sim::SimNetwork net{sim, {}};
  std::vector<std::unique_ptr<core::IdemReplica>> replicas;
  std::unique_ptr<core::IdemClient> client;

  CounterCluster() {
    core::IdemConfig config;
    config.n = 3;
    config.f = 1;
    config.reject_threshold = 50;
    for (std::uint32_t i = 0; i < 3; ++i) {
      replicas.push_back(std::make_unique<core::IdemReplica>(
          sim, net, ReplicaId{i}, config, std::make_unique<app::CounterService>(),
          core::make_default_acceptance(config, 1)));
    }
    client = std::make_unique<core::IdemClient>(sim, net, ClientId{0},
                                                core::IdemClientConfig{});
  }

  consensus::Outcome invoke(std::vector<std::byte> command) {
    std::optional<consensus::Outcome> outcome;
    client->invoke(std::move(command),
                   [&](const consensus::Outcome& o) { outcome = o; });
    sim.run_while([&] { return !outcome.has_value() && sim.now() < 30 * kSecond; });
    EXPECT_TRUE(outcome.has_value());
    return outcome.value_or(consensus::Outcome{});
  }
};

TEST(CounterService, ReplicatedCounterIsLinear) {
  CounterCluster cluster;
  for (int i = 1; i <= 10; ++i) {
    auto outcome = cluster.invoke(add_cmd("ops", 1));
    ASSERT_EQ(outcome.kind, consensus::Outcome::Kind::Reply);
    EXPECT_EQ(app::CounterService::decode_value(outcome.result), i);
  }
  // All replicas agree on the final state.
  cluster.sim.run_for(kSecond);
  auto s0 = cluster.replicas[0]->state_machine().snapshot();
  EXPECT_EQ(s0, cluster.replicas[1]->state_machine().snapshot());
  EXPECT_EQ(s0, cluster.replicas[2]->state_machine().snapshot());
}

TEST(CounterService, SurvivesLeaderCrash) {
  CounterCluster cluster;
  ASSERT_EQ(cluster.invoke(add_cmd("c", 5)).kind, consensus::Outcome::Kind::Reply);
  cluster.replicas[0]->crash();
  auto outcome = cluster.invoke(add_cmd("c", 5));
  ASSERT_EQ(outcome.kind, consensus::Outcome::Kind::Reply);
  EXPECT_EQ(app::CounterService::decode_value(outcome.result), 10);
}

// Section 5.3: a client that aborted in the *ambivalence* state does not
// know whether its update executed. The paper's remedy is a subsequent
// probe request (here: a READ) once the service is reachable again —
// counters make the outcome unambiguous.
TEST(CounterService, ProbeRequestResolvesAmbivalence) {
  sim::Simulator sim(31);
  sim::SimNetwork net(sim, {});
  core::IdemConfig config;
  config.n = 3;
  config.f = 1;
  config.reject_threshold = 50;

  // Replicas 1 and 2 reject everything; replica 0 accepts — so the client
  // reaches ambivalence (2 = n-f rejects) although the add WILL execute
  // via forwarding.
  struct Switchable final : core::AcceptanceTest {
    bool rejecting = true;
    core::AcceptanceVerdict evaluate(RequestId, std::span<const std::byte>,
                                     const core::AcceptanceContext&) override {
      return rejecting ? core::AcceptanceVerdict::no() : core::AcceptanceVerdict::yes();
    }
    const char* name() const override { return "switchable"; }
  };
  std::vector<std::unique_ptr<core::IdemReplica>> replicas;
  std::vector<Switchable*> switches;
  for (std::uint32_t i = 0; i < 3; ++i) {
    std::unique_ptr<core::AcceptanceTest> test;
    if (i == 0) {
      test = std::make_unique<core::NeverReject>();
    } else {
      auto switchable = std::make_unique<Switchable>();
      switches.push_back(switchable.get());
      test = std::move(switchable);
    }
    replicas.push_back(std::make_unique<core::IdemReplica>(
        sim, net, ReplicaId{i}, config, std::make_unique<app::CounterService>(),
        std::move(test)));
  }
  core::IdemClientConfig client_config;
  client_config.optimistic_wait = kMillisecond;  // aborts before the forward resolves
  core::IdemClient client(sim, net, ClientId{0}, client_config);

  std::optional<consensus::Outcome> first;
  client.invoke(add_cmd("c", 7), [&](const consensus::Outcome& o) { first = o; });
  sim.run_while([&] { return !first.has_value() && sim.now() < 10 * kSecond; });
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->kind, consensus::Outcome::Kind::Rejected);
  EXPECT_FALSE(first->definitive_failure);  // ambivalence, not failure

  // Let the forwarding mechanism finish the agreement in the background,
  // and let the "overload" subside before the probe.
  sim.run_for(kSecond);
  for (auto* s : switches) s->rejecting = false;

  // Probe: read the counter. The add did execute, so the probe proves it
  // and the client must NOT resubmit the increment.
  std::optional<consensus::Outcome> probe;
  client.invoke(read_cmd("c"), [&](const consensus::Outcome& o) { probe = o; });
  sim.run_while([&] { return !probe.has_value() && sim.now() < 20 * kSecond; });
  ASSERT_TRUE(probe.has_value());
  ASSERT_EQ(probe->kind, consensus::Outcome::Kind::Reply);
  EXPECT_EQ(app::CounterService::decode_value(probe->result), 7);
}

}  // namespace
}  // namespace idem
