// Unit tests for IDEM's acceptance tests (paper Section 5.1) and the
// consensus bookkeeping helpers.
#include <gtest/gtest.h>

#include "consensus/checkpoint.hpp"
#include "consensus/quorum.hpp"
#include "idem/acceptance.hpp"

namespace idem::core {
namespace {

/// Calls test.accept with an empty command (most tests are content-blind).
template <typename T>
bool accept_empty(T& test, RequestId id, const AcceptanceContext& c) {
  return test.accept(id, std::span<const std::byte>{}, c);
}

AcceptanceContext ctx(std::size_t active, std::size_t r, Time now = 0) {
  AcceptanceContext c;
  c.active_requests = active;
  c.reject_threshold = r;
  c.now = now;
  return c;
}

RequestId rid(std::uint64_t cid, std::uint64_t onr) {
  return RequestId{ClientId{cid}, OpNum{onr}};
}

// ---------------------------------------------------------------------------
// NeverReject / TailDrop
// ---------------------------------------------------------------------------

TEST(NeverRejectTest, AlwaysAccepts) {
  NeverReject test;
  EXPECT_TRUE(accept_empty(test, rid(1, 1), ctx(0, 50)));
  EXPECT_TRUE(accept_empty(test, rid(1, 2), ctx(50, 50)));
  EXPECT_TRUE(accept_empty(test, rid(1, 3), ctx(5000, 50)));
}

TEST(TailDropTest, AcceptsBelowThreshold) {
  TailDrop test;
  EXPECT_TRUE(accept_empty(test, rid(1, 1), ctx(0, 50)));
  EXPECT_TRUE(accept_empty(test, rid(1, 2), ctx(49, 50)));
}

TEST(TailDropTest, RejectsAtThreshold) {
  TailDrop test;
  EXPECT_FALSE(accept_empty(test, rid(1, 1), ctx(50, 50)));
  EXPECT_FALSE(accept_empty(test, rid(1, 2), ctx(51, 50)));
}

// ---------------------------------------------------------------------------
// AqmPrioritized
// ---------------------------------------------------------------------------

AqmPrioritized::Params params(std::size_t groups, std::uint64_t seed = 1) {
  AqmPrioritized::Params p;
  p.start_fraction = 0.6;
  p.time_slice = 2 * kSecond;
  p.group_count = groups;
  p.prf_seed = seed;
  return p;
}

TEST(AqmTest, AcceptsEverythingBelowStartFraction) {
  AqmPrioritized test(params(4));
  for (std::uint64_t c = 0; c < 200; ++c) {
    EXPECT_TRUE(accept_empty(test, rid(c, 1), ctx(29, 50)));  // 29 < 0.6 * 50
  }
}

TEST(AqmTest, HardCapAtThreshold) {
  AqmPrioritized test(params(4));
  for (std::uint64_t c = 0; c < 200; ++c) {
    EXPECT_FALSE(accept_empty(test, rid(c, 1), ctx(50, 50)));
    EXPECT_FALSE(accept_empty(test, rid(c, 1), ctx(75, 50)));
  }
}

TEST(AqmTest, PrioritizedClientsTailDropOnly) {
  AqmPrioritized test(params(4));
  // At t=0, group 0 is prioritized: clients 0..r-1.
  for (std::uint64_t c = 0; c < 50; ++c) {
    EXPECT_TRUE(accept_empty(test, rid(c, 1), ctx(45, 50, 0)));
  }
}

TEST(AqmTest, NonPrioritizedRejectedProbabilistically) {
  AqmPrioritized test(params(4));
  // Clients of group 1 (cid 50..99) at t=0 with r_now/r = 0.9.
  int accepted = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    if (accept_empty(test, rid(50 + (i % 50), 1 + i / 50), ctx(45, 50, 0))) ++accepted;
  }
  // p(reject) = 0.9 -> ~10% accepted.
  EXPECT_GT(accepted, 20);
  EXPECT_LT(accepted, 250);
}

TEST(AqmTest, RejectionProbabilityScalesWithLoad) {
  AqmPrioritized test(params(4));
  auto acceptance_rate = [&](std::size_t active) {
    int accepted = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
      if (accept_empty(test, rid(50 + (i % 50), 1000 + i), ctx(active, 50, 0))) ++accepted;
    }
    return static_cast<double>(accepted) / n;
  };
  double at_60 = acceptance_rate(30);
  double at_80 = acceptance_rate(40);
  double at_96 = acceptance_rate(48);
  EXPECT_GT(at_60, at_80);
  EXPECT_GT(at_80, at_96);
  EXPECT_NEAR(at_60, 0.4, 0.08);   // p = 30/50 = 0.6 reject
  EXPECT_NEAR(at_96, 0.04, 0.03);  // p = 48/50 = 0.96 reject
}

TEST(AqmTest, PrfIsDeterministicAcrossInstances) {
  // Two replicas with the same seed must reach the same verdict for the
  // same request at the same load (the unanimity mechanism).
  AqmPrioritized a(params(4, 99));
  AqmPrioritized b(params(4, 99));
  for (std::uint64_t i = 0; i < 500; ++i) {
    RequestId id = rid(60 + i % 40, i);
    EXPECT_EQ(accept_empty(a, id, ctx(40, 50, 0)), accept_empty(b, id, ctx(40, 50, 0)));
  }
}

TEST(AqmTest, DifferentSeedsDiverge) {
  AqmPrioritized a(params(4, 1));
  AqmPrioritized b(params(4, 2));
  int differ = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    RequestId id = rid(60, i);
    if (accept_empty(a, id, ctx(40, 50, 0)) != accept_empty(b, id, ctx(40, 50, 0))) ++differ;
  }
  EXPECT_GT(differ, 50);
}

TEST(AqmTest, PrioritizedGroupRotatesWithTime) {
  AqmPrioritized test(params(4));
  EXPECT_EQ(test.prioritized_group(0), 0u);
  EXPECT_EQ(test.prioritized_group(2 * kSecond), 1u);
  EXPECT_EQ(test.prioritized_group(4 * kSecond), 2u);
  EXPECT_EQ(test.prioritized_group(8 * kSecond), 0u);  // wraps around
}

TEST(AqmTest, GroupAssignmentByClientId) {
  AqmPrioritized test(params(3));
  EXPECT_EQ(test.group_of(ClientId{0}, 50), 0u);
  EXPECT_EQ(test.group_of(ClientId{49}, 50), 0u);
  EXPECT_EQ(test.group_of(ClientId{50}, 50), 1u);
  EXPECT_EQ(test.group_of(ClientId{149}, 50), 2u);
  EXPECT_EQ(test.group_of(ClientId{150}, 50), 0u);  // wraps at group_count
}

TEST(AqmTest, FairnessAcrossGroupsOverTime) {
  // Over several time slices every group gets prioritized slots, so all
  // clients see similar acceptance rates (paper: "similar share of
  // accepted and rejected requests").
  AqmPrioritized test(params(2));
  std::uint64_t onr = 0;
  int accepted_group0 = 0, accepted_group1 = 0;
  for (Time t = 0; t < 8 * kSecond; t += 10 * kMillisecond) {
    for (std::uint64_t c : {std::uint64_t{5}, std::uint64_t{55}}) {
      bool ok = accept_empty(test, rid(c, ++onr), ctx(40, 50, t));
      if (c < 50) accepted_group0 += ok;
      else accepted_group1 += ok;
    }
  }
  double ratio = static_cast<double>(accepted_group0) / accepted_group1;
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST(AqmTest, FactoryDerivesGroupCount) {
  IdemConfig config;
  config.reject_threshold = 50;
  auto test = make_default_acceptance(config, 125);
  auto* aqm = dynamic_cast<AqmPrioritized*>(test.get());
  ASSERT_NE(aqm, nullptr);
  // ceil(125 / 50) = 3 groups.
  EXPECT_EQ(aqm->group_of(ClientId{100}, 50), 2u);
  EXPECT_EQ(aqm->group_of(ClientId{150}, 50), 0u);
}


// ---------------------------------------------------------------------------
// PriorityClasses (Section 5.1, "further options")
// ---------------------------------------------------------------------------

PriorityClasses make_priority_test() {
  // class 0 = best effort (cut at 50% of r), class 1 = normal (80%),
  // class 2 = critical (tail drop at r). Client id mod 3 picks the class.
  return PriorityClasses([](ClientId cid) { return std::size_t(cid.value % 3); },
                         {0.5, 0.8});
}

TEST(PriorityClassesTest, AllClassesAcceptedAtLowLoad) {
  PriorityClasses test = make_priority_test();
  for (std::uint64_t c = 0; c < 3; ++c) {
    EXPECT_TRUE(accept_empty(test, rid(c, 1), ctx(10, 50)));
  }
}

TEST(PriorityClassesTest, LowPriorityCutFirst) {
  PriorityClasses test = make_priority_test();
  // At 60% fill: class 0 (limit 25) rejected, class 1 (limit 40) and
  // class 2 still accepted.
  EXPECT_FALSE(accept_empty(test, rid(0, 1), ctx(30, 50)));
  EXPECT_TRUE(accept_empty(test, rid(1, 1), ctx(30, 50)));
  EXPECT_TRUE(accept_empty(test, rid(2, 1), ctx(30, 50)));
}

TEST(PriorityClassesTest, OnlyCriticalNearCapacity) {
  PriorityClasses test = make_priority_test();
  EXPECT_FALSE(accept_empty(test, rid(0, 1), ctx(45, 50)));
  EXPECT_FALSE(accept_empty(test, rid(1, 1), ctx(45, 50)));
  EXPECT_TRUE(accept_empty(test, rid(2, 1), ctx(45, 50)));
}

TEST(PriorityClassesTest, HardCapAppliesToEveryone) {
  PriorityClasses test = make_priority_test();
  for (std::uint64_t c = 0; c < 3; ++c) {
    EXPECT_FALSE(accept_empty(test, rid(c, 1), ctx(50, 50)));
  }
}

// ---------------------------------------------------------------------------
// CostAware (Section 5.1, "further options")
// ---------------------------------------------------------------------------

TEST(CostAwareTest, CheapRequestsTailDrop) {
  // Estimator: command size in bytes ~ cost in microseconds.
  CostAware test([](std::span<const std::byte> cmd) { return Duration(cmd.size()); },
                 /*cheap=*/100, /*expensive=*/1000, /*min_fraction=*/0.2);
  std::vector<std::byte> cheap(50);
  EXPECT_TRUE(test.accept(rid(1, 1), cheap, ctx(45, 50)));
  EXPECT_FALSE(test.accept(rid(1, 2), cheap, ctx(50, 50)));
}

TEST(CostAwareTest, ExpensiveRequestsRejectedEarlier) {
  CostAware test([](std::span<const std::byte> cmd) { return Duration(cmd.size()); },
                 /*cheap=*/100, /*expensive=*/1000, /*min_fraction=*/0.2);
  std::vector<std::byte> expensive(1000);
  // limit = 0.2 * 50 = 10 slots for the most expensive requests.
  EXPECT_TRUE(test.accept(rid(1, 1), expensive, ctx(9, 50)));
  EXPECT_FALSE(test.accept(rid(1, 2), expensive, ctx(10, 50)));
  // A cheap request is still welcome at the same load.
  std::vector<std::byte> cheap(50);
  EXPECT_TRUE(test.accept(rid(1, 3), cheap, ctx(10, 50)));
}

TEST(CostAwareTest, AdmissionLimitInterpolatesLinearly) {
  CostAware test([](std::span<const std::byte> cmd) { return Duration(cmd.size()); },
                 /*cheap=*/100, /*expensive=*/1100, /*min_fraction=*/0.0);
  EXPECT_EQ(test.admission_limit(100, 50), 50u);
  EXPECT_EQ(test.admission_limit(600, 50), 25u);   // halfway -> half of r
  EXPECT_EQ(test.admission_limit(1100, 50), 0u);
  EXPECT_EQ(test.admission_limit(5000, 50), 0u);   // clamped beyond expensive
}

// ---------------------------------------------------------------------------
// DeadlineAware
// ---------------------------------------------------------------------------

/// Context carrying a latency budget.
AcceptanceContext dctx(std::size_t active, std::size_t r, Time now, Duration deadline) {
  AcceptanceContext c = ctx(active, r, now);
  c.deadline = deadline;
  return c;
}

/// Warms the estimator past min_samples with uniform `service` samples.
void warm(DeadlineAware& test, Time at, Duration service, std::size_t count = 64) {
  for (std::size_t i = 0; i < count; ++i) test.record_sample(at, service);
}

TEST(DeadlineAwareTest, DeadlinelessTrafficFallsBackToTailDrop) {
  DeadlineAware test{DeadlineAware::Params{}};
  EXPECT_TRUE(accept_empty(test, rid(1, 1), ctx(3, 5)));
  RejectReason reason = RejectReason::None;
  EXPECT_FALSE(test.accept(rid(1, 2), {}, ctx(5, 5), reason));
  EXPECT_EQ(reason, RejectReason::RtQueueFull);
}

TEST(DeadlineAwareTest, ColdStartAcceptsEvenTightBudgets) {
  // No service-time evidence yet: no grounds to declare anything
  // un-meetable, so even a 1 ns budget is admitted (up to r).
  DeadlineAware test{DeadlineAware::Params{}};
  EXPECT_TRUE(accept_empty(test, rid(1, 1), dctx(40, 50, 0, 1)));
}

TEST(DeadlineAwareTest, HardCapBindsRegardlessOfSlack) {
  DeadlineAware test{DeadlineAware::Params{}};
  EXPECT_FALSE(accept_empty(test, rid(1, 1), dctx(50, 50, 0, kSecond)));
}

TEST(DeadlineAwareTest, RejectsUnmeetableBudgetWithItsOwnReason) {
  DeadlineAware test{DeadlineAware::Params{}};
  warm(test, kMillisecond, kMillisecond);
  // 10 requests ahead at ~1 ms each: a 2 ms budget cannot survive the
  // queue, a 1 s budget easily can.
  RejectReason reason = RejectReason::None;
  EXPECT_FALSE(test.accept(rid(1, 1), {}, dctx(10, 50, kMillisecond, 2 * kMillisecond), reason));
  EXPECT_EQ(reason, RejectReason::DeadlineUnmeetable);
  EXPECT_TRUE(accept_empty(test, rid(1, 2), dctx(10, 50, kMillisecond, kSecond)));
}

TEST(DeadlineAwareTest, SafetyMarginDemandsExtraSlack) {
  DeadlineAware::Params params;
  params.safety_margin = kSecond;
  DeadlineAware test{params};
  warm(test, kMillisecond, kMillisecond);
  // Meetable on the raw estimate, but not with a whole second of margin.
  EXPECT_FALSE(accept_empty(test, rid(1, 1), dctx(10, 50, kMillisecond, 100 * kMillisecond)));
}

TEST(DeadlineAwareTest, EstimatorTracksTheServiceQuantile) {
  DeadlineAware test{DeadlineAware::Params{}};
  warm(test, kMillisecond, kMillisecond, 100);
  EXPECT_EQ(test.sample_count(kMillisecond), 100u);
  // The log-bucketed histogram answers with a bucket midpoint: right
  // order of magnitude, not the exact sample.
  Duration q = test.service_quantile(kMillisecond);
  EXPECT_GE(q, kMillisecond / 2);
  EXPECT_LE(q, 2 * kMillisecond);
  // expected_wait is quantile x depth, by definition.
  EXPECT_EQ(test.expected_wait(10, kMillisecond), 10 * q);
}

TEST(DeadlineAwareTest, QuantileReachesIntoTheTail) {
  // 90 fast + 10 slow samples: the 0.95 quantile must answer from the
  // slow bucket — a mean would repeat the Jensen gap this policy closes.
  DeadlineAware::Params params;
  params.quantile = 0.95;
  DeadlineAware test{params};
  warm(test, kMillisecond, kMillisecond, 90);
  warm(test, kMillisecond, 16 * kMillisecond, 10);
  EXPECT_GE(test.service_quantile(kMillisecond), 8 * kMillisecond);
}

TEST(DeadlineAwareTest, WindowForgetsOldSamples) {
  DeadlineAware test{DeadlineAware::Params{}};
  warm(test, 0, kMillisecond);
  ASSERT_GE(test.sample_count(0), 64u);
  // Two half-window epochs later the evidence is gone and the policy is
  // back to cold-start admission.
  const Time later = 2 * kSecond;
  EXPECT_EQ(test.sample_count(later), 0u);
  EXPECT_TRUE(accept_empty(test, rid(1, 1), dctx(40, 50, later, 1)));
}

TEST(DeadlineAwareTest, ObserveExecutionSamplesBusyGapsOnly) {
  DeadlineAware test{DeadlineAware::Params{}};
  test.observe_execution(1 * kMillisecond, 5);  // first completion: no gap yet
  EXPECT_EQ(test.sample_count(1 * kMillisecond), 0u);
  test.observe_execution(2 * kMillisecond, 4);  // busy gap -> sample
  EXPECT_EQ(test.sample_count(2 * kMillisecond), 1u);
  test.observe_execution(3 * kMillisecond, 0);  // busy gap -> sample, now idle
  EXPECT_EQ(test.sample_count(3 * kMillisecond), 2u);
  // The gap after an idle period says nothing about service time.
  test.observe_execution(400 * kMillisecond, 2);
  EXPECT_EQ(test.sample_count(400 * kMillisecond), 2u);
}

// ---------------------------------------------------------------------------
// QuorumTracker
// ---------------------------------------------------------------------------

TEST(QuorumTracker, CountsDistinctVoters) {
  consensus::QuorumTracker<int> tracker;
  EXPECT_EQ(tracker.vote(1, ReplicaId{0}), 1u);
  EXPECT_EQ(tracker.vote(1, ReplicaId{0}), 1u);  // duplicate vote
  EXPECT_EQ(tracker.vote(1, ReplicaId{1}), 2u);
  EXPECT_TRUE(tracker.reached(1, 2));
  EXPECT_FALSE(tracker.reached(2, 1));
}

TEST(QuorumTracker, EraseResets) {
  consensus::QuorumTracker<int> tracker;
  tracker.vote(5, ReplicaId{0});
  tracker.erase(5);
  EXPECT_EQ(tracker.count(5), 0u);
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

TEST(CheckpointStore, DueAtInterval) {
  consensus::CheckpointStore store(100);
  EXPECT_FALSE(store.due(SeqNum{0}));
  EXPECT_TRUE(store.due(SeqNum{99}));
  EXPECT_TRUE(store.due(SeqNum{199}));
  EXPECT_FALSE(store.due(SeqNum{200}));
}

TEST(CheckpointStore, KeepsNewest) {
  consensus::CheckpointStore store(10);
  consensus::Checkpoint old_cp;
  old_cp.upto = SeqNum{9};
  consensus::Checkpoint new_cp;
  new_cp.upto = SeqNum{19};
  store.store(new_cp);
  store.store(old_cp);  // stale; must not replace
  ASSERT_TRUE(store.latest().has_value());
  EXPECT_EQ(store.latest()->upto, SeqNum{19});
}

}  // namespace
}  // namespace idem::core
