// Round-trip and framing tests for every wire message type.
#include <gtest/gtest.h>

#include <random>

#include "consensus/messages.hpp"

namespace idem::msg {
namespace {

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> out;
  for (const char* p = s; *p; ++p) out.push_back(static_cast<std::byte>(*p));
  return out;
}

/// Encodes `message`, decodes it through the type-dispatching decoder, and
/// returns the typed copy.
template <typename M>
M round_trip(const M& message) {
  auto encoded = message.encode();
  auto decoded = decode(encoded);
  const auto* typed = dynamic_cast<const M*>(decoded.get());
  EXPECT_NE(typed, nullptr) << "decoded to wrong type";
  // Re-encoding must be byte-identical (canonical encoding).
  EXPECT_EQ(typed->encode(), encoded);
  return *typed;
}

TEST(Messages, RequestRoundTrip) {
  Request m(RequestId{ClientId{7}, OpNum{42}}, bytes_of("command-bytes"));
  Request back = round_trip(m);
  EXPECT_EQ(back.id, m.id);
  EXPECT_EQ(back.command, m.command);
}

TEST(Messages, RequestDeadlineRoundTripsWhenWireFlagOn) {
  // Real mode arms the flag; a REQUEST then carries its latency budget.
  set_wire_request_deadlines(true);
  Request m(RequestId{ClientId{7}, OpNum{42}}, bytes_of("cmd"), 25 * kMillisecond);
  Request back = round_trip(m);
  set_wire_request_deadlines(false);
  EXPECT_EQ(back.id, m.id);
  EXPECT_EQ(back.command, m.command);
  EXPECT_EQ(back.deadline, 25 * kMillisecond);
}

TEST(Messages, RequestDeadlineDroppedWhenWireFlagOff) {
  // Sim mode keeps the flag off: the budget must not reach the wire (it
  // would change wire_size() and perturb pinned cost-model trajectories),
  // and a deadline-less frame decodes to 0.
  Request m(RequestId{ClientId{7}, OpNum{42}}, bytes_of("cmd"), 25 * kMillisecond);
  Request plain(RequestId{ClientId{7}, OpNum{42}}, bytes_of("cmd"));
  EXPECT_EQ(m.encode(), plain.encode());
  EXPECT_EQ(round_trip(m).deadline, 0);
}

TEST(Messages, RequestZeroDeadlineStaysOffTheWireEvenWhenArmed) {
  // "No budget" is the absence of the field, not a zero varint — an armed
  // real-mode peer and a deadline-less client agree on the same bytes.
  set_wire_request_deadlines(true);
  Request m(RequestId{ClientId{1}, OpNum{2}}, bytes_of("cmd"), 0);
  set_wire_request_deadlines(false);
  Request plain(RequestId{ClientId{1}, OpNum{2}}, bytes_of("cmd"));
  EXPECT_EQ(m.wire_size(), plain.wire_size());
}

TEST(Messages, RequestDecodeToleratesDeadlineFromNewerPeer) {
  // A deadline-carrying frame must decode on a binary that never arms the
  // flag (the decoder is tolerant of the trailing field either way).
  set_wire_request_deadlines(true);
  auto encoded =
      Request(RequestId{ClientId{3}, OpNum{4}}, bytes_of("cmd"), 7 * kMillisecond).encode();
  set_wire_request_deadlines(false);
  auto decoded = decode(encoded);
  const auto* typed = dynamic_cast<const Request*>(decoded.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->id, (RequestId{ClientId{3}, OpNum{4}}));
  EXPECT_EQ(typed->deadline, 7 * kMillisecond);
}

TEST(Messages, ReplyRoundTrip) {
  Reply m(RequestId{ClientId{1}, OpNum{2}}, bytes_of("result"));
  Reply back = round_trip(m);
  EXPECT_EQ(back.id, m.id);
  EXPECT_EQ(back.result, m.result);
}

TEST(Messages, RejectRoundTrip) {
  Reject m(RequestId{ClientId{9}, OpNum{100}});
  EXPECT_EQ(round_trip(m).id, m.id);
}

TEST(Messages, RejectIsTiny) {
  // Rejections must be cheap: a handful of bytes.
  Reject m(RequestId{ClientId{5}, OpNum{1000}});
  EXPECT_LE(m.wire_size(), 8u);
}

TEST(Messages, RejectReasonRoundTripsWhenWireFlagOn) {
  // Real mode arms the flag; a REJECT then carries its taxonomy reason.
  set_wire_reject_reasons(true);
  Reject m(RequestId{ClientId{9}, OpNum{100}}, RejectReason::RejectedCacheHit);
  Reject back = round_trip(m);
  set_wire_reject_reasons(false);
  EXPECT_EQ(back.id, m.id);
  EXPECT_EQ(back.reason, RejectReason::RejectedCacheHit);
}

TEST(Messages, RejectReasonDroppedWhenWireFlagOff) {
  // Sim mode keeps the flag off: the reason must not reach the wire (it
  // would change wire_size() and perturb pinned cost-model trajectories),
  // and a reason-less frame decodes to None.
  Reject m(RequestId{ClientId{9}, OpNum{100}}, RejectReason::RtQueueFull);
  Reject plain(RequestId{ClientId{9}, OpNum{100}});
  EXPECT_EQ(m.encode(), plain.encode());
  EXPECT_EQ(round_trip(m).reason, RejectReason::None);
}

TEST(Messages, RejectDecodeToleratesUnknownReasonByte) {
  // A reason value from a newer peer must not kill the connection; it
  // falls back to None instead.
  set_wire_reject_reasons(true);
  auto encoded = Reject(RequestId{ClientId{1}, OpNum{2}}, RejectReason::RtQueueFull).encode();
  set_wire_reject_reasons(false);
  encoded.back() = static_cast<std::byte>(0xEE);
  auto decoded = decode(encoded);
  const auto* typed = dynamic_cast<const Reject*>(decoded.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->reason, RejectReason::None);
}

TEST(Messages, RequireRoundTrip) {
  Require m;
  m.from = ReplicaId{2};
  for (int i = 0; i < 20; ++i) m.ids.push_back(RequestId{ClientId{std::uint64_t(i)}, OpNum{5}});
  Require back = round_trip(m);
  EXPECT_EQ(back.from, m.from);
  EXPECT_EQ(back.ids, m.ids);
}

TEST(Messages, ProposeCarriesIdsNotRequests) {
  Propose m;
  m.view = ViewId{3};
  m.sqn = SeqNum{12345};
  for (int i = 0; i < 32; ++i) {
    m.ids.push_back(RequestId{ClientId{std::uint64_t(i)}, OpNum{77}});
  }
  Propose back = round_trip(m);
  EXPECT_EQ(back.view, m.view);
  EXPECT_EQ(back.sqn, m.sqn);
  EXPECT_EQ(back.ids, m.ids);
  // Agreement on ids keeps proposals small (paper Section 4.2): far less
  // than 32 full 100-byte requests.
  EXPECT_LT(m.wire_size(), 32 * 50u);
}

TEST(Messages, CommitRoundTrip) {
  Commit m;
  m.from = ReplicaId{1};
  m.view = ViewId{0};
  m.sqn = SeqNum{9};
  m.ids = {RequestId{ClientId{3}, OpNum{4}}};
  Commit back = round_trip(m);
  EXPECT_EQ(back.from, m.from);
  EXPECT_EQ(back.ids, m.ids);
}

TEST(Messages, ForwardRoundTrip) {
  Forward m;
  m.from = ReplicaId{0};
  m.requests.emplace_back(RequestId{ClientId{1}, OpNum{1}}, bytes_of("a"));
  m.requests.emplace_back(RequestId{ClientId{2}, OpNum{5}}, bytes_of("bb"));
  Forward back = round_trip(m);
  ASSERT_EQ(back.requests.size(), 2u);
  EXPECT_EQ(back.requests[1].command, bytes_of("bb"));
}

TEST(Messages, EmbeddedRequestsNeverCarryDeadlines) {
  // The budget matters at admission time; by forward/propose time the
  // request is already accepted, so the embedded codec drops it even with
  // the wire flag armed.
  set_wire_request_deadlines(true);
  Forward m;
  m.from = ReplicaId{1};
  m.requests.emplace_back(RequestId{ClientId{2}, OpNum{3}}, bytes_of("cmd"),
                          9 * kMillisecond);
  Forward back = round_trip(m);
  set_wire_request_deadlines(false);
  ASSERT_EQ(back.requests.size(), 1u);
  EXPECT_EQ(back.requests[0].deadline, 0);
}

TEST(Messages, FetchRoundTrip) {
  Fetch m;
  m.from = ReplicaId{2};
  m.id = RequestId{ClientId{8}, OpNum{16}};
  Fetch back = round_trip(m);
  EXPECT_EQ(back.id, m.id);
}

TEST(Messages, ViewChangeRoundTrip) {
  ViewChange m;
  m.from = ReplicaId{1};
  m.target = ViewId{4};
  m.window_start = SeqNum{100};
  WindowEntry entry;
  entry.sqn = SeqNum{101};
  entry.view = ViewId{3};
  entry.items = {RequestId{ClientId{1}, OpNum{2}}, RequestId{ClientId{3}, OpNum{4}}};
  m.proposals.push_back(entry);
  ViewChange back = round_trip(m);
  ASSERT_EQ(back.proposals.size(), 1u);
  EXPECT_EQ(back.proposals[0].sqn, entry.sqn);
  EXPECT_EQ(back.proposals[0].view, entry.view);
  EXPECT_EQ(back.proposals[0].items, entry.items);
}

TEST(Messages, StateRequestRoundTrip) {
  StateRequest m;
  m.from = ReplicaId{2};
  m.have = SeqNum{55};
  EXPECT_EQ(round_trip(m).have, m.have);
}

TEST(Messages, StateResponseRoundTrip) {
  StateResponse m;
  m.from = ReplicaId{0};
  m.upto = SeqNum{255};
  m.snapshot = bytes_of("snapshot-data");
  m.last_executed = {{ClientId{1}, OpNum{10}}, {ClientId{2}, OpNum{20}}};
  StateResponse back = round_trip(m);
  EXPECT_EQ(back.snapshot, m.snapshot);
  EXPECT_EQ(back.last_executed, m.last_executed);
}

TEST(Messages, PaxosProposeRoundTrip) {
  PaxosPropose m;
  m.view = ViewId{1};
  m.sqn = SeqNum{2};
  m.requests.emplace_back(RequestId{ClientId{1}, OpNum{1}}, bytes_of("full-request"));
  PaxosPropose back = round_trip(m);
  ASSERT_EQ(back.requests.size(), 1u);
  EXPECT_EQ(back.requests[0].command, bytes_of("full-request"));
}

TEST(Messages, PaxosProposeIsBiggerThanIdemPropose) {
  // The structural difference the paper exploits: IDEM agrees on ids.
  std::vector<std::byte> command(100, std::byte{'x'});
  PaxosPropose paxos;
  paxos.view = ViewId{0};
  paxos.sqn = SeqNum{0};
  Propose idem;
  idem.view = ViewId{0};
  idem.sqn = SeqNum{0};
  for (int i = 0; i < 16; ++i) {
    RequestId id{ClientId{std::uint64_t(i)}, OpNum{1}};
    paxos.requests.emplace_back(id, command);
    idem.ids.push_back(id);
  }
  EXPECT_GT(paxos.wire_size(), 10 * idem.wire_size());
}

TEST(Messages, PaxosAcceptRoundTrip) {
  PaxosAccept m;
  m.from = ReplicaId{1};
  m.view = ViewId{2};
  m.sqn = SeqNum{3};
  PaxosAccept back = round_trip(m);
  EXPECT_EQ(back.sqn, m.sqn);
}

TEST(Messages, PaxosViewChangeRoundTrip) {
  PaxosViewChange m;
  m.from = ReplicaId{0};
  m.target = ViewId{2};
  m.window_start = SeqNum{10};
  PaxosWindowEntry entry;
  entry.sqn = SeqNum{11};
  entry.view = ViewId{1};
  entry.items.emplace_back(RequestId{ClientId{4}, OpNum{4}}, bytes_of("cmd"));
  m.proposals.push_back(entry);
  PaxosViewChange back = round_trip(m);
  ASSERT_EQ(back.proposals.size(), 1u);
  EXPECT_EQ(back.proposals[0].view, ViewId{1});
  EXPECT_EQ(back.proposals[0].items[0].command, bytes_of("cmd"));
}

TEST(Messages, PaxosHeartbeatRoundTrip) {
  PaxosHeartbeat m;
  m.from = ReplicaId{1};
  m.view = ViewId{7};
  EXPECT_EQ(round_trip(m).view, m.view);
}

TEST(Messages, SmartMessagesRoundTrip) {
  SmartPropose p;
  p.view = ViewId{0};
  p.sqn = SeqNum{1};
  p.requests.emplace_back(RequestId{ClientId{1}, OpNum{1}}, bytes_of("x"));
  EXPECT_EQ(round_trip(p).requests.size(), 1u);

  SmartWrite w;
  w.from = ReplicaId{2};
  w.view = ViewId{0};
  w.sqn = SeqNum{1};
  EXPECT_EQ(round_trip(w).from, w.from);

  SmartAccept a;
  a.from = ReplicaId{1};
  a.view = ViewId{0};
  a.sqn = SeqNum{1};
  EXPECT_EQ(round_trip(a).sqn, a.sqn);
}

// Randomized round-trips over the shared window-entry codec
// (BasicWindowEntry<Item>): both instantiations, random shapes — empty
// proposal lists, empty item lists, and odd body sizes included. The
// fixed seed keeps failures reproducible.
TEST(Messages, WindowEntryRandomRoundTrip) {
  std::mt19937_64 rng(0xF00D);
  for (int iter = 0; iter < 200; ++iter) {
    ViewChange m;
    m.from = ReplicaId{static_cast<std::uint32_t>(rng() % 7)};
    m.target = ViewId{rng() % 1000};
    m.window_start = SeqNum{rng() % 100000};
    const std::size_t entries = rng() % 6;
    for (std::size_t e = 0; e < entries; ++e) {
      WindowEntry entry;
      entry.sqn = SeqNum{rng()};
      entry.view = ViewId{rng() % 1000};
      const std::size_t items = rng() % 9;
      for (std::size_t i = 0; i < items; ++i) {
        entry.items.push_back(RequestId{ClientId{rng() % 512}, OpNum{rng() % 100000}});
      }
      m.proposals.push_back(std::move(entry));
    }
    ViewChange back = round_trip(m);
    EXPECT_EQ(back.from, m.from);
    EXPECT_EQ(back.target, m.target);
    EXPECT_EQ(back.window_start, m.window_start);
    ASSERT_EQ(back.proposals.size(), m.proposals.size());
    for (std::size_t e = 0; e < m.proposals.size(); ++e) {
      EXPECT_EQ(back.proposals[e].sqn, m.proposals[e].sqn);
      EXPECT_EQ(back.proposals[e].view, m.proposals[e].view);
      EXPECT_EQ(back.proposals[e].items, m.proposals[e].items);
    }
  }
}

TEST(Messages, PaxosWindowEntryRandomRoundTrip) {
  std::mt19937_64 rng(0xBEEF);
  for (int iter = 0; iter < 200; ++iter) {
    PaxosViewChange m;
    m.from = ReplicaId{static_cast<std::uint32_t>(rng() % 7)};
    m.target = ViewId{rng() % 1000};
    m.window_start = SeqNum{rng() % 100000};
    const std::size_t entries = rng() % 5;
    for (std::size_t e = 0; e < entries; ++e) {
      PaxosWindowEntry entry;
      entry.sqn = SeqNum{rng()};
      entry.view = ViewId{rng() % 1000};
      const std::size_t items = rng() % 5;
      for (std::size_t i = 0; i < items; ++i) {
        std::vector<std::byte> command(rng() % 65);
        for (std::byte& b : command) b = static_cast<std::byte>(rng());
        entry.items.emplace_back(RequestId{ClientId{rng() % 512}, OpNum{rng() % 100000}},
                                 std::move(command));
      }
      m.proposals.push_back(std::move(entry));
    }
    PaxosViewChange back = round_trip(m);
    EXPECT_EQ(back.from, m.from);
    EXPECT_EQ(back.target, m.target);
    EXPECT_EQ(back.window_start, m.window_start);
    ASSERT_EQ(back.proposals.size(), m.proposals.size());
    for (std::size_t e = 0; e < m.proposals.size(); ++e) {
      EXPECT_EQ(back.proposals[e].sqn, m.proposals[e].sqn);
      EXPECT_EQ(back.proposals[e].view, m.proposals[e].view);
      ASSERT_EQ(back.proposals[e].items.size(), m.proposals[e].items.size());
      for (std::size_t i = 0; i < m.proposals[e].items.size(); ++i) {
        EXPECT_EQ(back.proposals[e].items[i].id, m.proposals[e].items[i].id);
        EXPECT_EQ(back.proposals[e].items[i].command, m.proposals[e].items[i].command);
      }
    }
  }
}

TEST(Messages, DecodeRejectsUnknownType) {
  std::vector<std::byte> bogus = {std::byte{0xEE}};
  EXPECT_THROW(decode(bogus), CodecError);
}

TEST(Messages, DecodeRejectsTruncated) {
  Request m(RequestId{ClientId{7}, OpNum{42}}, bytes_of("command"));
  auto encoded = m.encode();
  encoded.resize(encoded.size() - 3);
  EXPECT_THROW(decode(encoded), CodecError);
}

TEST(Messages, WireSizeMatchesEncoding) {
  Forward m;
  m.from = ReplicaId{0};
  m.requests.emplace_back(RequestId{ClientId{1}, OpNum{1}}, bytes_of("payload"));
  EXPECT_EQ(m.wire_size(), m.encode().size());
}

}  // namespace
}  // namespace idem::msg
