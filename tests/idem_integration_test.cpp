// Integration tests for the IDEM protocol: agreement, collaborative
// overload prevention, forwarding/fetch, implicit garbage collection,
// state transfer, view changes, and the client-side semantics of
// Section 5.3.
#include <gtest/gtest.h>

#include <memory>

#include "test_util.hpp"

namespace idem {
namespace {

using harness::Cluster;
using harness::Protocol;
using test::get_cmd;
using test::invoke_and_wait;
using test::put_cmd;
using test::test_cluster_config;

TEST(IdemIntegration, BasicPutGet) {
  Cluster cluster(test_cluster_config(Protocol::Idem));
  auto put = invoke_and_wait(cluster, 0, put_cmd("k", "v"));
  ASSERT_TRUE(put.has_value());
  EXPECT_EQ(put->kind, consensus::Outcome::Kind::Reply);

  auto get = invoke_and_wait(cluster, 0, get_cmd("k"));
  ASSERT_TRUE(get.has_value());
  ASSERT_EQ(get->kind, consensus::Outcome::Kind::Reply);
  auto result = app::KvResult::decode(get->result);
  ASSERT_EQ(result.values.size(), 1u);
  EXPECT_EQ(result.values[0], "v");
}

TEST(IdemIntegration, AllReplicasExecuteIdentically) {
  Cluster cluster(test_cluster_config(Protocol::Idem, /*clients=*/3));
  test::ExecutionRecorder recorder(cluster);
  for (int round = 0; round < 10; ++round) {
    for (std::size_t c = 0; c < 3; ++c) {
      auto outcome = invoke_and_wait(
          cluster, c, put_cmd("key" + std::to_string(c), "v" + std::to_string(round)));
      ASSERT_TRUE(outcome.has_value());
      ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
    }
  }
  cluster.simulator().run_for(kSecond);  // let followers finish
  recorder.expect_consistent();
  ASSERT_EQ(recorder.log(0).size(), 30u);
  EXPECT_EQ(recorder.log(0).size(), recorder.log(1).size());
  EXPECT_EQ(recorder.log(0).size(), recorder.log(2).size());

  // All replicas hold the same application state.
  auto snapshot0 = cluster.idem_replica(0)->state_machine().snapshot();
  EXPECT_EQ(snapshot0, cluster.idem_replica(1)->state_machine().snapshot());
  EXPECT_EQ(snapshot0, cluster.idem_replica(2)->state_machine().snapshot());
}

TEST(IdemIntegration, ReadYourOwnWrites) {
  Cluster cluster(test_cluster_config(Protocol::Idem));
  for (int i = 0; i < 5; ++i) {
    std::string value = "v" + std::to_string(i);
    ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("x", value))->kind,
              consensus::Outcome::Kind::Reply);
    auto get = invoke_and_wait(cluster, 0, get_cmd("x"));
    ASSERT_EQ(get->kind, consensus::Outcome::Kind::Reply);
    EXPECT_EQ(app::KvResult::decode(get->result).values.at(0), value);
  }
}

TEST(IdemIntegration, ExactlyOnceUnderMessageLoss) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/2, /*seed=*/3);
  config.network.drop_probability = 0.2;
  Cluster cluster(config);
  test::ExecutionRecorder recorder(cluster);

  for (int i = 0; i < 10; ++i) {
    for (std::size_t c = 0; c < 2; ++c) {
      auto outcome = invoke_and_wait(cluster, c, put_cmd("k", "v"), 60 * kSecond);
      ASSERT_TRUE(outcome.has_value()) << "operation stalled under loss";
      ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
    }
  }
  cluster.network().set_drop_probability(0.0);
  cluster.simulator().run_for(5 * kSecond);
  recorder.expect_consistent();
  // Despite retransmissions, every operation executed exactly once.
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::uint64_t onr = 1; onr <= 10; ++onr) {
      RequestId id{ClientId{c}, OpNum{onr}};
      EXPECT_EQ(recorder.count_executions(0, id), 1u) << to_string(id);
    }
  }
}

TEST(IdemIntegration, RejectsWhenSaturated) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/1);
  config.reject_threshold = 0;  // every request fails the acceptance test
  Cluster cluster(config);
  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 5 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Rejected);
  // All three replicas rejected: the client reached the *failure* state.
  EXPECT_TRUE(outcome->definitive_failure);
  EXPECT_EQ(outcome->rejects_seen, 3u);
}

TEST(IdemIntegration, PessimisticClientAbortsAtNMinusF) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/1);
  config.reject_threshold = 0;
  config.idem_client.strategy = core::IdemClientConfig::Strategy::Pessimistic;
  Cluster cluster(config);
  cluster.crash_replica(2);  // only n-f = 2 replicas can answer
  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 5 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Rejected);
  EXPECT_EQ(outcome->rejects_seen, 2u);  // ambivalence state, aborted at once
  EXPECT_FALSE(outcome->definitive_failure);
}

TEST(IdemIntegration, RejectLatencyIsLow) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/1);
  config.reject_threshold = 0;
  config.idem_client.strategy = core::IdemClientConfig::Strategy::Pessimistic;
  Cluster cluster(config);
  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 5 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  // A rejection takes one round trip: well under 2 ms in this network.
  EXPECT_LT(outcome->latency(), 2 * kMillisecond);
}

// Property 5.1 / Theorem 6.2: a request accepted by at least one correct
// replica is executed by all correct replicas — even if every other
// replica rejected it. The forwarding mechanism makes this happen.
TEST(IdemIntegration, SingleAcceptorStillExecutes) {
  sim::Simulator sim(11);
  sim::SimNetwork net(sim, {});

  core::IdemConfig rc;
  rc.n = 3;
  rc.f = 1;
  rc.reject_threshold = 50;
  rc.viewchange_timeout = 500 * kMillisecond;

  struct AlwaysReject final : core::AcceptanceTest {
    core::AcceptanceVerdict evaluate(RequestId, std::span<const std::byte>,
                                     const core::AcceptanceContext&) override {
      return core::AcceptanceVerdict::no();
    }
    const char* name() const override { return "always-reject"; }
  };

  std::vector<std::unique_ptr<core::IdemReplica>> replicas;
  for (std::uint32_t i = 0; i < 3; ++i) {
    std::unique_ptr<core::AcceptanceTest> test;
    if (i == 0) {
      test = std::make_unique<core::NeverReject>();
    } else {
      test = std::make_unique<AlwaysReject>();
    }
    replicas.push_back(std::make_unique<core::IdemReplica>(
        sim, net, ReplicaId{i}, rc, std::make_unique<app::KvStore>(), std::move(test)));
  }

  core::IdemClientConfig cc;
  cc.optimistic_wait = 200 * kMillisecond;  // wait out the forward timeout
  core::IdemClient client(sim, net, ClientId{0}, cc);

  std::optional<consensus::Outcome> outcome;
  client.invoke(test::put_cmd("k", "v"), [&](const consensus::Outcome& o) { outcome = o; });
  sim.run_until(5 * kSecond);

  ASSERT_TRUE(outcome.has_value());
  // Replica 0 accepted; forwarding made the others adopt the request, so
  // the client got a reply despite two rejections.
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  for (const auto& replica : replicas) {
    EXPECT_EQ(replica->last_executed(ClientId{0}), OpNum{1})
        << "replica " << replica->replica_id().value;
  }
  EXPECT_GT(replicas[0]->stats().forwards_sent, 0u);
  EXPECT_EQ(replicas[1]->stats().forward_accepted, 1u);
}

TEST(IdemIntegration, FetchRecoversMissingRequestBody) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/1);
  Cluster cluster(config);
  // Replica 2 never hears from the client directly...
  cluster.network().block_link(consensus::client_address(ClientId{0}),
                               consensus::replica_address(ReplicaId{2}));
  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 5 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);

  // ...but still executes the request after fetching or receiving the
  // forwarded body.
  cluster.simulator().run_for(kSecond);
  EXPECT_EQ(cluster.idem_replica(2)->last_executed(ClientId{0}), OpNum{1});
  EXPECT_EQ(cluster.idem_replica(2)->stats().rejected, 0u);
}

TEST(IdemIntegration, ImplicitGarbageCollectionAdvancesWindow) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/1);
  config.reject_threshold = 2;  // r_max = 6: windows advance quickly
  config.idem.checkpoint_interval = 8;
  Cluster cluster(config);
  for (int i = 0; i < 40; ++i) {
    auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v" + std::to_string(i)));
    ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  }
  cluster.simulator().run_for(kSecond);
  // 40 instances were agreed; the window start must have moved past most
  // of them purely through the implicit mechanism (no progress messages).
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(cluster.idem_replica(i)->window_start().value, 25u) << "replica " << i;
    EXPECT_GE(cluster.idem_replica(i)->next_execute().value, 40u) << "replica " << i;
  }
}

TEST(IdemIntegration, LaggingReplicaCatchesUpViaCheckpoint) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/1);
  config.reject_threshold = 2;
  config.idem.checkpoint_interval = 8;
  Cluster cluster(config);

  // Cut replica 2 off completely.
  std::vector<sim::NodeId> others = {consensus::replica_address(ReplicaId{0}),
                                     consensus::replica_address(ReplicaId{1}),
                                     consensus::client_address(ClientId{0})};
  cluster.network().partition({consensus::replica_address(ReplicaId{2})}, others);

  for (int i = 0; i < 40; ++i) {
    auto outcome = invoke_and_wait(cluster, 0, put_cmd("k" + std::to_string(i), "v"));
    ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  }
  EXPECT_EQ(cluster.idem_replica(2)->next_execute().value, 0u);

  cluster.network().heal();
  // New traffic makes replica 2 notice it is behind and request state.
  for (int i = 0; i < 10; ++i) {
    auto outcome = invoke_and_wait(cluster, 0, put_cmd("fresh" + std::to_string(i), "v"));
    ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  }
  cluster.simulator().run_for(2 * kSecond);

  auto* lagging = cluster.idem_replica(2);
  EXPECT_GE(lagging->stats().state_transfers, 1u);
  EXPECT_GT(lagging->next_execute().value, 35u);
  // After catch-up the state machine matches the up-to-date replicas.
  auto* store = dynamic_cast<app::KvStore*>(&lagging->state_machine());
  ASSERT_NE(store, nullptr);
  EXPECT_TRUE(store->get("k39").has_value());
}

TEST(IdemIntegration, LeaderCrashTriggersViewChange) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/1);
  Cluster cluster(config);
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("before", "crash"))->kind,
            consensus::Outcome::Kind::Reply);

  cluster.crash_replica(0);  // initial leader of view 0

  auto outcome = invoke_and_wait(cluster, 0, put_cmd("after", "crash"), 10 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  EXPECT_TRUE(cluster.idem_replica(1)->is_leader());
  EXPECT_GE(cluster.idem_replica(1)->view().value, 1u);

  // Both survivors have the new value.
  cluster.simulator().run_for(kSecond);
  for (int i = 1; i <= 2; ++i) {
    auto* store = dynamic_cast<app::KvStore*>(&cluster.idem_replica(i)->state_machine());
    EXPECT_EQ(store->get("after"), "crash") << "replica " << i;
  }
}

TEST(IdemIntegration, RequestOutstandingAcrossLeaderCrashCompletes) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/1);
  Cluster cluster(config);
  // Crash the leader the moment the request arrives there, before it can
  // complete the agreement.
  std::optional<consensus::Outcome> outcome;
  cluster.client(0).invoke(put_cmd("k", "v"),
                           [&](const consensus::Outcome& o) { outcome = o; });
  cluster.apply({sim::Fault::crash(cluster.simulator().now() + 60 * kMicrosecond, 0)});
  cluster.simulator().run_while(
      [&] { return !outcome.has_value() && cluster.simulator().now() < 30 * kSecond; });

  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
}

TEST(IdemIntegration, FollowerCrashDoesNotDisturbService) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/1);
  Cluster cluster(config);
  cluster.crash_replica(2);
  for (int i = 0; i < 10; ++i) {
    auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v" + std::to_string(i)));
    ASSERT_TRUE(outcome.has_value());
    ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
    // No view change needed: replica 0 stays leader.
    EXPECT_EQ(cluster.idem_replica(0)->view().value, 0u);
  }
}

TEST(IdemIntegration, SuccessiveLeaderCrashes) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/1);
  config.n = 5;
  config.f = 2;
  config.idem_client.n = 5;  // overridden by the cluster anyway
  Cluster cluster(config);
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("a", "1"))->kind,
            consensus::Outcome::Kind::Reply);
  cluster.crash_replica(0);
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("b", "2"), 10 * kSecond)->kind,
            consensus::Outcome::Kind::Reply);
  cluster.crash_replica(1);
  auto outcome = invoke_and_wait(cluster, 0, put_cmd("c", "3"), 10 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  // With f = 2 crashes tolerated, replica 2 leads view 2.
  EXPECT_TRUE(cluster.idem_replica(2)->is_leader());
}

TEST(IdemIntegration, ConsistencyAcrossViewChange) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/2);
  Cluster cluster(config);
  test::ExecutionRecorder recorder(cluster);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(invoke_and_wait(cluster, i % 2, put_cmd("k" + std::to_string(i), "v"))->kind,
              consensus::Outcome::Kind::Reply);
  }
  cluster.crash_replica(0);
  for (int i = 5; i < 10; ++i) {
    ASSERT_EQ(
        invoke_and_wait(cluster, i % 2, put_cmd("k" + std::to_string(i), "v"), 10 * kSecond)
            ->kind,
        consensus::Outcome::Kind::Reply);
  }
  cluster.simulator().run_for(kSecond);
  recorder.expect_consistent();
  // The survivors executed everything.
  auto s1 = cluster.idem_replica(1)->state_machine().snapshot();
  auto s2 = cluster.idem_replica(2)->state_machine().snapshot();
  EXPECT_EQ(s1, s2);
}

TEST(IdemIntegration, NoViewChangeWhenIdle) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/1);
  Cluster cluster(config);
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k", "v"))->kind,
            consensus::Outcome::Kind::Reply);
  // Idle for many multiples of the view-change timeout: the progress timer
  // must not fire without outstanding work.
  cluster.simulator().run_for(10 * kSecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.idem_replica(i)->view().value, 0u) << "replica " << i;
    EXPECT_EQ(cluster.idem_replica(i)->stats().view_changes, 0u) << "replica " << i;
  }
}

TEST(IdemIntegration, OptimisticClientGetsLateReply) {
  // One replica rejects, two accept: the client may see one REJECT but the
  // reply arrives well within the optimistic window.
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/1);
  Cluster cluster(config);
  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
}

TEST(IdemIntegration, RejectedCacheServesFetch) {
  // A request rejected by a replica must still be retrievable from its
  // rejected-request cache once the agreement commits it.
  sim::Simulator sim(13);
  sim::SimNetwork net(sim, {});

  core::IdemConfig rc;
  rc.n = 3;
  rc.f = 1;
  rc.reject_threshold = 50;
  rc.forward_timeout = 30 * kSecond;  // effectively disable forwarding

  struct RejectOnReplica2 final : core::AcceptanceTest {
    bool reject;
    explicit RejectOnReplica2(bool reject_) : reject(reject_) {}
    core::AcceptanceVerdict evaluate(RequestId, std::span<const std::byte>,
                                     const core::AcceptanceContext&) override {
      return reject ? core::AcceptanceVerdict::no() : core::AcceptanceVerdict::yes();
    }
    const char* name() const override { return "test"; }
  };

  std::vector<std::unique_ptr<core::IdemReplica>> replicas;
  for (std::uint32_t i = 0; i < 3; ++i) {
    replicas.push_back(std::make_unique<core::IdemReplica>(
        sim, net, ReplicaId{i}, rc, std::make_unique<app::KvStore>(),
        std::make_unique<RejectOnReplica2>(i == 2)));
  }
  core::IdemClient client(sim, net, ClientId{0}, {});
  std::optional<consensus::Outcome> outcome;
  client.invoke(test::put_cmd("k", "v"), [&](const consensus::Outcome& o) { outcome = o; });
  sim.run_until(5 * kSecond);

  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  // Replica 2 rejected the request but must have executed it anyway, using
  // its rejected-request cache as the body source (forwarding is off).
  EXPECT_EQ(replicas[2]->last_executed(ClientId{0}), OpNum{1});
  EXPECT_EQ(replicas[2]->stats().rejected, 1u);
  EXPECT_EQ(replicas[2]->stats().forward_accepted, 0u);
}

}  // namespace
}  // namespace idem
