// Robustness fuzzing: replicas are bombarded with randomly generated
// (well-typed but arbitrarily ordered and valued) protocol messages. The
// crash-fault model does not require tolerating this, but a production
// system must not crash, hang, or corrupt committed state when a buggy
// peer or a stale process sends nonsense. Parameterized over seeds.
#include <gtest/gtest.h>

#include <memory>

#include "app/kv_store.hpp"
#include "idem/replica.hpp"
#include "paxos/replica.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"
#include "smart/replica.hpp"
#include "test_util.hpp"

namespace idem {
namespace {

/// Generates a random protocol message. When `spoofing` is false, only
/// kinds that do not impersonate an in-group replica's agreement vote are
/// produced (the crash-fault model assumes no identity spoofing, so
/// injected PROPOSE/COMMIT votes could legitimately corrupt agreement).
sim::PayloadPtr random_message(Rng& rng, bool spoofing = true) {
  // Fuzz client ids live in 100..107: impersonating a *real* client (like
  // impersonating a replica) is outside the crash-fault model — a ghost
  // request with a victim's (cid, onr) would wedge its duplicate-detection
  // state, which no unauthenticated protocol can distinguish from the
  // client itself misbehaving.
  auto rand_id = [&rng] {
    return RequestId{ClientId{100 + rng.next_u64() % 8}, OpNum{rng.next_u64() % 64}};
  };
  auto rand_ids = [&] {
    std::vector<RequestId> ids;
    auto n = rng.uniform_int(0, 5);
    for (int i = 0; i < n; ++i) ids.push_back(rand_id());
    return ids;
  };
  auto rand_bytes = [&rng] {
    std::vector<std::byte> out(static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : out) b = static_cast<std::byte>(rng.next_u32() & 0xFF);
    return out;
  };
  ViewId view{rng.next_u64() % 6};
  SeqNum sqn{rng.next_u64() % 128};
  ReplicaId from{static_cast<std::uint32_t>(rng.next_u64() % 3)};

  switch (rng.uniform_int(0, spoofing ? 11 : 6)) {
    case 0: return std::make_shared<msg::Request>(rand_id(), rand_bytes());
    case 1: return std::make_shared<msg::Reply>(rand_id(), rand_bytes());
    case 2: return std::make_shared<msg::Reject>(rand_id());
    case 3: {
      auto m = std::make_shared<msg::Forward>();
      m->from = from;
      for (int i = 0; i < rng.uniform_int(0, 3); ++i) {
        m->requests.emplace_back(rand_id(), rand_bytes());
      }
      return m;
    }
    case 4: {
      auto m = std::make_shared<msg::Fetch>();
      m->from = from;
      m->id = rand_id();
      return m;
    }
    case 5: {
      auto m = std::make_shared<msg::StateRequest>();
      m->from = from;
      m->have = sqn;
      return m;
    }
    case 6: {
      auto m = std::make_shared<msg::StateResponse>();
      m->from = from;
      m->upto = sqn;
      m->snapshot = rand_bytes();
      m->last_executed = {{ClientId{rng.next_u64() % 8}, OpNum{rng.next_u64() % 64}}};
      return m;
    }
    case 7: {
      auto m = std::make_shared<msg::Require>();
      m->from = from;
      m->ids = rand_ids();
      return m;
    }
    case 8: {
      auto m = std::make_shared<msg::Propose>();
      m->view = view;
      m->sqn = sqn;
      m->ids = rand_ids();
      return m;
    }
    case 9: {
      auto m = std::make_shared<msg::Commit>();
      m->from = from;
      m->view = view;
      m->sqn = sqn;
      m->ids = rand_ids();
      return m;
    }
    case 10: {
      auto m = std::make_shared<msg::ViewChange>();
      m->from = from;
      m->target = view;
      m->window_start = sqn;
      for (int i = 0; i < rng.uniform_int(0, 3); ++i) {
        msg::WindowEntry entry;
        entry.sqn = SeqNum{rng.next_u64() % 128};
        entry.view = ViewId{rng.next_u64() % 6};
        entry.items = rand_ids();
        m->proposals.push_back(std::move(entry));
      }
      return m;
    }
    default: {
      auto m = std::make_shared<msg::PaxosPropose>();
      m->view = view;
      m->sqn = sqn;
      m->requests.emplace_back(rand_id(), rand_bytes());
      return m;
    }
  }
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, IdemReplicaSurvivesGarbageMessages) {
  sim::Simulator sim(GetParam());
  sim::SimNetwork net(sim, {});
  core::IdemConfig config;
  config.n = 3;
  config.f = 1;
  config.reject_threshold = 8;
  config.viewchange_timeout = 500 * kMillisecond;
  core::IdemReplica replica(sim, net, ReplicaId{1}, config, std::make_unique<app::KvStore>(),
                            std::make_unique<core::NeverReject>());

  // A hostile "peer" at replica 0's address floods random messages.
  class Flooder final : public sim::Node {
   public:
    using sim::Node::Node;
    using sim::Node::send;

   protected:
    void on_message(sim::NodeId, const sim::Payload&) override {}
  };
  Flooder flooder(sim, net, consensus::replica_address(ReplicaId{0}),
                  sim::NodeKind::Replica);

  Rng& rng = sim.rng("fuzz");
  for (int i = 0; i < 2000; ++i) {
    sim.schedule_after(rng.uniform_int(0, kSecond), [&flooder, &replica, &rng] {
      flooder.send(replica.id(), random_message(rng));
    });
  }
  sim.run_until(2 * kSecond);
  // Survival is the assertion: no crash, no hang; and the replica still
  // serves a legitimate request afterwards... except garbage commits may
  // have "committed" random bindings at the fuzz view. What must hold is
  // the absence of crashes and that the state machine is intact.
  SUCCEED();
}

TEST_P(FuzzSeeds, WholeClusterSurvivesAndStaysConsistent) {
  // Full IDEM cluster + one flooder; after the noise stops, the cluster
  // must still be consistent (same execution prefix everywhere).
  auto config = test::test_cluster_config(harness::Protocol::Idem, /*clients=*/2,
                                          GetParam());
  harness::Cluster cluster(config);
  test::ExecutionRecorder recorder(cluster);

  class Flooder final : public sim::Node {
   public:
    using sim::Node::Node;
    using sim::Node::send;

   protected:
    void on_message(sim::NodeId, const sim::Payload&) override {}
  };
  // The flooder impersonates an unknown replica id 7 (not part of the
  // group): its votes/messages must never be able to corrupt agreement.
  Flooder flooder(cluster.simulator(), cluster.network(),
                  consensus::replica_address(ReplicaId{7}), sim::NodeKind::Replica);
  Rng& rng = cluster.simulator().rng("fuzz2");
  for (int i = 0; i < 1000; ++i) {
    cluster.simulator().schedule_after(rng.uniform_int(0, 2 * kSecond), [&, i] {
      auto target = consensus::replica_address(
          ReplicaId{static_cast<std::uint32_t>(i % 3)});
      flooder.send(target, random_message(rng, /*spoofing=*/false));
    });
  }

  // Legitimate traffic runs concurrently with the flood.
  for (int op = 0; op < 10; ++op) {
    for (std::size_t c = 0; c < 2; ++c) {
      auto outcome = test::invoke_and_wait(
          cluster, c, test::put_cmd("k" + std::to_string(op), "v"), 30 * kSecond);
      ASSERT_TRUE(outcome.has_value());
    }
  }
  cluster.simulator().run_for(3 * kSecond);
  recorder.expect_consistent();
  // Both application states agree wherever both executed the same prefix.
  EXPECT_EQ(cluster.idem_replica(1)->state_machine().snapshot(),
            cluster.idem_replica(2)->state_machine().snapshot());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace idem
