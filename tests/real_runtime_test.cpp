// Unit tests for the real deployment runtime: thread lifecycle, cross-
// thread posting, the metrics ticker on a wall-clock loop, trace merging,
// and the in-process RealCluster harness (including crash injection).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "app/kv_store.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/ticker.hpp"
#include "obs/trace.hpp"
#include "real/cluster.hpp"
#include "real/exec_thread.hpp"
#include "real/load.hpp"
#include "real/runtime.hpp"
#include "test_util.hpp"

namespace idem {
namespace {

// ---------------------------------------------------------------------------
// RealRuntime
// ---------------------------------------------------------------------------

TEST(RealRuntimeTest, StartStopIsIdempotentAndRestartable) {
  real::RealRuntime runtime;
  EXPECT_FALSE(runtime.running());
  runtime.start();
  EXPECT_TRUE(runtime.running());
  runtime.start();  // no-op
  runtime.stop();
  EXPECT_FALSE(runtime.running());
  runtime.stop();  // no-op
  runtime.start();
  EXPECT_TRUE(runtime.running());
  runtime.stop();
}

TEST(RealRuntimeTest, PostedTasksRunOnTheLoopThread) {
  real::RealRuntime runtime;
  runtime.start();
  std::atomic<bool> ran{false};
  std::thread::id loop_thread;
  runtime.post([&] {
    loop_thread = std::this_thread::get_id();
    ran.store(true);
  });
  // call() round-trips through the loop, so the post above has run by now.
  std::thread::id observed = runtime.call([] { return std::this_thread::get_id(); });
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(observed, loop_thread);
  EXPECT_NE(observed, std::this_thread::get_id());
  runtime.stop();
}

TEST(RealRuntimeTest, CallReturnsValuesAndRunsInlineWhenStopped) {
  real::RealRuntime runtime;
  // Not running: executes inline on this thread.
  EXPECT_EQ(runtime.call([] { return 41 + 1; }), 42);
  runtime.start();
  EXPECT_EQ(runtime.call([] { return std::string("loop"); }), "loop");
  runtime.stop();
  EXPECT_EQ(runtime.call([] { return 7; }), 7);
}

TEST(RealRuntimeTest, TasksPostedBeforeStartRunAfterStart) {
  real::RealRuntime runtime;
  std::atomic<int> value{0};
  runtime.post([&] { value.store(13); });
  runtime.start();
  runtime.call([] {});  // barrier
  EXPECT_EQ(value.load(), 13);
  runtime.stop();
}

// ---------------------------------------------------------------------------
// ExecutionThread: SPSC handoff between loop thread and execution worker
// ---------------------------------------------------------------------------

TEST(RealRuntimeTest, ExecutionThreadRunsBatchAndCompletesOnLoopThread) {
  real::RealRuntime runtime;
  real::ExecutionThread executor(runtime.loop());
  app::KvStore store(app::KvStore::Costs{0, 0.0, 0});
  runtime.start();

  std::promise<std::pair<std::thread::id, std::size_t>> completion;
  auto future = completion.get_future();
  runtime.post([&] {
    std::vector<std::vector<std::byte>> commands;
    commands.push_back(test::put_cmd("a", "1"));
    commands.push_back(test::put_cmd("b", "2"));
    executor.execute(store, std::move(commands), /*due=*/0,
                     [&](std::vector<std::vector<std::byte>> results) {
                       completion.set_value({std::this_thread::get_id(), results.size()});
                     });
  });

  auto [completed_on, results] = future.get();
  EXPECT_EQ(results, 2u);  // one result per command, in order
  // The contract: `done` runs back on the submitting replica's loop thread.
  EXPECT_EQ(completed_on, runtime.call([] { return std::this_thread::get_id(); }));
  EXPECT_EQ(executor.batches_executed(), 1u);

  runtime.stop();
  executor.stop();
  executor.stop();  // idempotent
}

TEST(RealClusterTest, ExecutionThreadServesRequestsEndToEnd) {
  real::RealClusterConfig config;
  config.n = 3;
  config.f = 1;
  config.seed = 41;
  config.execution_thread = true;  // network/execution split on every replica
  real::RealCluster cluster(config);
  cluster.start();

  real::LoadOptions load;
  load.clients = 4;
  load.duration = 400 * kMillisecond;
  load.seed = 41;
  load.replicas = cluster.replica_addresses();
  load.client = cluster.client_config();
  load.epoch = cluster.epoch();
  real::LoadStats stats = real::run_load(load);

  EXPECT_GT(stats.replies, 0u);
  EXPECT_EQ(stats.malformed, 0u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(cluster.replica_stats(i).executed, 0u) << "replica " << i;
  }
  // Crash with an executor attached: the worker joins before the replica
  // and its state machine die (the teardown-order contract).
  cluster.crash_replica(2);
  EXPECT_TRUE(cluster.crashed(2));
  cluster.shutdown();
}

// ---------------------------------------------------------------------------
// MetricsTicker on a wall-clock runtime
// ---------------------------------------------------------------------------

TEST(MetricsTickerTest, SamplesPeriodicallyOnEventLoop) {
  rpc::EventLoop loop;
  obs::MetricsRegistry registry;
  int gauge_value = 3;
  registry.add_gauge("g", [&] { return static_cast<double>(gauge_value); });
  obs::MetricsTicker ticker(loop, registry, 10 * kMillisecond);
  ticker.start();
  EXPECT_TRUE(ticker.running());
  loop.run_for(105 * kMillisecond);
  ticker.stop();
  EXPECT_FALSE(ticker.running());
  // ~10 ticks expected; demand at least half to stay robust under load.
  EXPECT_GE(registry.rows(), 5u);
  EXPECT_EQ(registry.value(0, 0), 3.0);
  // Timestamps are monotone wall-clock nanoseconds.
  for (std::size_t row = 1; row < registry.rows(); ++row) {
    EXPECT_GT(registry.row_time(row), registry.row_time(row - 1));
  }

  // Stopped ticker stops sampling.
  const std::size_t rows_after_stop = registry.rows();
  loop.run_for(30 * kMillisecond);
  EXPECT_EQ(registry.rows(), rows_after_stop);
}

TEST(MetricsTickerTest, ZeroIntervalNeverStarts) {
  rpc::EventLoop loop;
  obs::MetricsRegistry registry;
  obs::MetricsTicker ticker(loop, registry, 0);
  ticker.start();
  EXPECT_FALSE(ticker.running());
}

// ---------------------------------------------------------------------------
// Trace merging
// ---------------------------------------------------------------------------

TEST(TraceMergeTest, MergesSnapshotsByTimestamp) {
  obs::TraceRecorder a(16), b(16);
  a.record(10, obs::TraceEventKind::RequestIssued, 1'000'000,
           RequestId{ClientId{1}, OpNum{1}});
  a.record(30, obs::TraceEventKind::RequestOutcome, 1'000'000,
           RequestId{ClientId{1}, OpNum{1}});
  b.record(20, obs::TraceEventKind::AcceptVerdict, 0, RequestId{ClientId{1}, OpNum{1}}, 1);

  auto merged = obs::merge_trace_snapshots({a.snapshot(), b.snapshot()});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].at, 10);
  EXPECT_EQ(merged[1].at, 20);
  EXPECT_EQ(merged[2].at, 30);
  EXPECT_EQ(merged[1].kind, obs::TraceEventKind::AcceptVerdict);
}

TEST(TraceMergeTest, TiesKeepPerRecorderOrder) {
  obs::TraceRecorder a(8);
  a.record(5, obs::TraceEventKind::RequestIssued, 7, RequestId{ClientId{1}, OpNum{1}});
  a.record(5, obs::TraceEventKind::RequestOutcome, 7, RequestId{ClientId{1}, OpNum{1}});
  auto merged = obs::merge_trace_snapshots({a.snapshot()});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].kind, obs::TraceEventKind::RequestIssued);
  EXPECT_EQ(merged[1].kind, obs::TraceEventKind::RequestOutcome);
}

// ---------------------------------------------------------------------------
// RealCluster
// ---------------------------------------------------------------------------

TEST(RealClusterTest, StartsWiresAndShutsDownCleanly) {
  real::RealClusterConfig config;
  config.n = 3;
  config.f = 1;
  config.seed = 11;
  real::RealCluster cluster(config);

  ASSERT_EQ(cluster.n(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_GT(cluster.port_of(i), 0);
  auto addresses = cluster.replica_addresses();
  ASSERT_EQ(addresses.size(), 3u);
  EXPECT_EQ(addresses[1].port, cluster.port_of(1));

  cluster.start();
  // View 0: replica 0 leads from the start.
  EXPECT_EQ(cluster.leader_index(), 0u);
  core::ReplicaStats stats = cluster.replica_stats(0);
  EXPECT_EQ(stats.requests_received, 0u);
  cluster.shutdown();
  cluster.shutdown();  // idempotent
}

TEST(RealClusterTest, ServesRequestsAndCountsThem) {
  real::RealClusterConfig config;
  config.n = 3;
  config.f = 1;
  config.seed = 23;
  real::RealCluster cluster(config);
  cluster.start();

  real::LoadOptions load;
  load.clients = 2;
  load.duration = 400 * kMillisecond;
  load.seed = 23;
  load.replicas = cluster.replica_addresses();
  load.client = cluster.client_config();
  load.epoch = cluster.epoch();
  real::LoadStats stats = real::run_load(load);

  EXPECT_GT(stats.replies, 0u);
  EXPECT_EQ(stats.malformed, 0u);
  // Every replica saw the multicast REQUESTs and executed operations.
  for (std::size_t i = 0; i < 3; ++i) {
    core::ReplicaStats replica = cluster.replica_stats(i);
    EXPECT_GT(replica.requests_received, 0u) << "replica " << i;
    EXPECT_GT(replica.executed, 0u) << "replica " << i;
  }
  cluster.shutdown();
}

TEST(RealClusterTest, CrashedFollowerLeavesQuorumServing) {
  real::RealClusterConfig config;
  config.n = 3;
  config.f = 1;
  config.seed = 31;
  real::RealCluster cluster(config);
  cluster.start();

  cluster.crash_replica(2);
  EXPECT_TRUE(cluster.crashed(2));
  EXPECT_EQ(cluster.port_of(2), 0);
  EXPECT_EQ(cluster.leader_index(), 0u);

  real::LoadOptions load;
  load.clients = 2;
  load.duration = 500 * kMillisecond;
  load.seed = 31;
  load.replicas = cluster.replica_addresses();
  load.client = cluster.client_config();
  load.epoch = cluster.epoch();
  real::LoadStats stats = real::run_load(load);

  // n - f = 2 live replicas still form a quorum.
  EXPECT_GT(stats.replies, 0u);
  cluster.shutdown();
}

TEST(RealClusterTest, LeaderCrashTriggersViewChange) {
  real::RealClusterConfig config;
  config.n = 3;
  config.f = 1;
  config.seed = 37;
  config.idem.viewchange_timeout = 250 * kMillisecond;
  real::RealCluster cluster(config);
  cluster.start();
  ASSERT_EQ(cluster.leader_index(), 0u);

  cluster.crash_replica(0);

  // Drive load so the survivors notice missing progress; the view change
  // needs outstanding work plus the 250 ms progress timeout.
  real::LoadOptions load;
  load.clients = 2;
  load.duration = 1500 * kMillisecond;
  load.seed = 37;
  load.client = cluster.client_config();
  load.client.retry_interval = 200 * kMillisecond;
  load.replicas = cluster.replica_addresses();
  load.epoch = cluster.epoch();
  real::LoadStats stats = real::run_load(load);

  const std::size_t leader = cluster.leader_index();
  EXPECT_EQ(leader, 1u);
  EXPECT_GT(cluster.replica_stats(1).view_changes, 0u);
  EXPECT_GT(stats.replies, 0u);  // service resumed after the view change
  cluster.shutdown();
}

}  // namespace
}  // namespace idem
