// Storm-engine tests: each connection-storm behavior (ramp, flash crowd,
// reconnect stampede, slow loris, churn) at a scale that finishes in a
// few seconds against an in-process RealCluster. bench/fig_storm.cpp runs
// the same scenarios at 10k connections; these pin the mechanics.
#include <gtest/gtest.h>

#include <cstddef>

#include "common/time.hpp"
#include "real/cluster.hpp"
#include "real/storm.hpp"

namespace idem {
namespace {

real::RealClusterConfig small_cluster(std::uint64_t seed) {
  real::RealClusterConfig config;
  config.n = 3;
  config.f = 1;
  config.reject_threshold = 24;
  config.seed = seed;
  config.expected_clients = 64;
  config.preload = true;
  config.workload.record_count = 200;
  config.transport.read_buffer_bytes = 1024;
  return config;
}

real::StormOptions storm_options(real::RealCluster& cluster, std::size_t sessions,
                                 std::uint64_t seed) {
  real::StormOptions options;
  options.replicas = cluster.replica_addresses();
  options.sessions = sessions;
  options.seed = seed;
  options.workload = cluster.config().workload;
  options.epoch = cluster.epoch();
  return options;
}

TEST(StormTest, RampEstablishesTheFullPopulation) {
  real::RealClusterConfig config = small_cluster(21);
  real::RealCluster cluster(config);
  cluster.start();

  real::StormOptions options = storm_options(cluster, 32, 21);
  options.ramp = 300 * kMillisecond;
  options.issue_rate = 1.0;  // open loop, light
  real::StormEngine storm(options);
  storm.start();
  storm.run_for(900 * kMillisecond);

  real::StormGauges gauges = storm.gauges();
  EXPECT_EQ(gauges.sessions, 32u);
  EXPECT_EQ(gauges.open_connections, 32u * 3);  // one conn per replica
  EXPECT_GE(storm.window().connects, 32u * 3);
  EXPECT_GT(storm.window().connect_latency.count(), 0u);
  EXPECT_EQ(storm.window().connect_failures, 0u);
  cluster.shutdown();
}

TEST(StormTest, ClosedLoopSessionsGetRepliesAndTheWindowResets) {
  real::RealClusterConfig config = small_cluster(22);
  real::RealCluster cluster(config);
  cluster.start();

  real::StormOptions options = storm_options(cluster, 8, 22);
  real::StormEngine storm(options);
  storm.start();
  storm.run_for(600 * kMillisecond);

  const real::StormWindow& window = storm.window();
  EXPECT_GT(window.issued, 0u);
  EXPECT_GT(window.replies, 0u);
  EXPECT_GT(window.reply_latency.count(), 0u);

  storm.reset_window();
  EXPECT_EQ(storm.window().replies, 0u);
  EXPECT_EQ(storm.window().connect_latency.count(), 0u);
  // Sessions stay live across a window reset and keep completing work.
  storm.run_for(400 * kMillisecond);
  EXPECT_GT(storm.window().replies, 0u);
  cluster.shutdown();
}

TEST(StormTest, FlashCrowdGrowsAndShrinksThePopulation) {
  real::RealClusterConfig config = small_cluster(23);
  real::RealCluster cluster(config);
  cluster.start();

  real::StormOptions options = storm_options(cluster, 8, 23);
  real::StormEngine storm(options);
  storm.start();
  storm.run_for(400 * kMillisecond);
  EXPECT_EQ(storm.gauges().sessions, 8u);

  storm.set_target_sessions(48);  // flash crowd
  storm.run_for(600 * kMillisecond);
  EXPECT_EQ(storm.gauges().sessions, 48u);
  EXPECT_EQ(storm.gauges().open_connections, 48u * 3);

  storm.set_target_sessions(4);  // crowd leaves (newest sessions die first)
  storm.run_for(300 * kMillisecond);
  EXPECT_EQ(storm.gauges().sessions, 4u);
  EXPECT_EQ(storm.gauges().open_connections, 4u * 3);
  cluster.shutdown();
}

TEST(StormTest, OverloadedCrowdSeesDefinitiveRejections) {
  real::RealClusterConfig config = small_cluster(24);
  config.reject_threshold = 8;  // tiny r_max: rejection engages early
  real::RealCluster cluster(config);
  cluster.start();

  real::StormOptions options = storm_options(cluster, 48, 24);
  real::StormEngine storm(options);
  storm.start();
  storm.run_for(1200 * kMillisecond);

  const real::StormWindow& window = storm.window();
  EXPECT_GT(window.replies, 0u);
  // 48 closed-loop clients against r_max = 8 must overflow the active
  // window; every overflow is a definitive rejection (n distinct REJECTs)
  // with a measured notification latency.
  EXPECT_GT(window.rejects, 0u);
  EXPECT_GT(window.reject_latency.count(), 0u);
  EXPECT_GT(window.reject_latency.p999(), 0);
  cluster.shutdown();
}

TEST(StormTest, LeaderCrashStampedeReconnectsAndRecovers) {
  real::RealClusterConfig config = small_cluster(25);
  // Survivors need outstanding load plus this progress timeout to elect a
  // new leader (same recipe as RealClusterTest.LeaderCrashTriggersViewChange).
  config.idem.viewchange_timeout = 250 * kMillisecond;
  real::RealCluster cluster(config);
  cluster.start();

  real::StormOptions options = storm_options(cluster, 24, 25);
  options.issue_rate = 4.0;
  real::StormEngine storm(options);
  storm.start();
  storm.run_for(700 * kMillisecond);

  const std::size_t leader = cluster.leader_index();
  ASSERT_LT(leader, cluster.n());
  cluster.crash_replica(leader);
  storm.reset_window();
  storm.run_for(2 * kSecond);

  const real::StormWindow& window = storm.window();
  // Every session lost an established connection (the stampede trigger)
  // and re-dialed the survivors after its jittered delay.
  EXPECT_GE(window.resets, 24u);
  EXPECT_GE(window.connects, 24u);
  storm.reset_window();
  storm.run_for(1500 * kMillisecond);
  EXPECT_GT(storm.window().replies, 0u);  // view change completed
  // Two survivors reachable, the crashed leader's conn stays dark.
  EXPECT_GE(storm.gauges().open_connections, 24u * 2);
  cluster.shutdown();
}

TEST(StormTest, SlowLorisIsEvictedByTheHalfOpenTimeout) {
  real::RealClusterConfig config = small_cluster(26);
  config.transport.half_open_timeout = 200 * kMillisecond;
  real::RealCluster cluster(config);
  cluster.start();

  real::StormOptions options = storm_options(cluster, 8, 26);
  options.slow_loris_fraction = 1.0;  // the whole population trickles
  options.loris_trickle = 100 * kMillisecond;
  real::StormEngine storm(options);
  storm.start();
  storm.run_for(1500 * kMillisecond);

  std::uint64_t evicted = 0;
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    evicted += cluster.transport_stats(i).half_open_evictions;
  }
  EXPECT_GE(evicted, 8u);
  EXPECT_GT(storm.window().loris_evictions, 0u);
  cluster.shutdown();
}

TEST(StormTest, ReconnectChurnCyclesConnections) {
  real::RealClusterConfig config = small_cluster(27);
  real::RealCluster cluster(config);
  cluster.start();

  real::StormOptions options = storm_options(cluster, 6, 27);
  options.reconnect_every_ops = 2;
  options.reconnect_delay_min = 5 * kMillisecond;
  options.reconnect_delay_max = 20 * kMillisecond;
  real::StormEngine storm(options);
  storm.start();
  storm.run_for(1200 * kMillisecond);

  // 6 sessions x 3 replicas = 18 initial connections; churn every 2 ops
  // must have cycled well past that.
  EXPECT_GT(storm.window().connects, 36u);
  EXPECT_GT(storm.window().replies, 0u);
  cluster.shutdown();
}

TEST(StormTest, ForcedReconnectAllTurnsThePopulationOver) {
  real::RealClusterConfig config = small_cluster(28);
  real::RealCluster cluster(config);
  cluster.start();

  real::StormOptions options = storm_options(cluster, 16, 28);
  options.issue_rate = 1.0;
  real::StormEngine storm(options);
  storm.start();
  storm.run_for(500 * kMillisecond);
  const std::uint64_t before = storm.window().connects;
  EXPECT_GE(before, 16u * 3);

  storm.reconnect_all();
  storm.run_for(600 * kMillisecond);
  EXPECT_GE(storm.window().connects, before + 16u * 3);
  EXPECT_EQ(storm.gauges().open_connections, 16u * 3);
  cluster.shutdown();
}

}  // namespace
}  // namespace idem
