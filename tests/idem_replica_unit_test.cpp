// White-box unit tests for IdemReplica: the replica is driven with raw
// protocol messages through the simulated transport, bypassing clients
// and other replicas, to pin down edge-case behaviours (out-of-order
// agreement messages, stale views, duplicate requests, GC math,
// re-replies) that the integration tests only exercise implicitly.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/kv_store.hpp"
#include "idem/replica.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace idem {
namespace {

/// A scriptable peer that records everything a replica sends to it and
/// can inject arbitrary messages.
class Probe final : public sim::Node {
 public:
  Probe(sim::Simulator& sim, sim::SimNetwork& net, sim::NodeId id,
        sim::NodeKind kind = sim::NodeKind::Replica)
      : sim::Node(sim, net, id, kind) {}

  std::vector<std::shared_ptr<const msg::Message>> received;

  template <typename M>
  std::vector<const M*> received_of() const {
    std::vector<const M*> out;
    for (const auto& message : received) {
      if (const auto* typed = dynamic_cast<const M*>(message.get())) out.push_back(typed);
    }
    return out;
  }

  void inject(sim::NodeId to, sim::PayloadPtr message) { send(to, std::move(message)); }

 protected:
  void on_message(sim::NodeId, const sim::Payload& message) override {
    if (const auto* typed = dynamic_cast<const msg::Message*>(&message)) {
      // Re-decode to keep an owning copy.
      received.push_back(msg::decode(typed->encode()));
    }
  }
};

struct ReplicaFixture {
  sim::Simulator sim{17};
  sim::NetworkConfig net_config;
  std::unique_ptr<sim::SimNetwork> net;
  std::unique_ptr<core::IdemReplica> replica;  // replica 1 (follower in view 0)
  std::unique_ptr<Probe> leader;               // poses as replica 0 = leader of view 0
  std::unique_ptr<Probe> peer;                 // poses as replica 2
  std::unique_ptr<Probe> client;               // poses as client 0

  explicit ReplicaFixture(core::IdemConfig config = make_config(), std::uint32_t me = 1) {
    net_config.jitter_mean = 0;
    net = std::make_unique<sim::SimNetwork>(sim, net_config);
    replica = std::make_unique<core::IdemReplica>(
        sim, *net, ReplicaId{me}, config, std::make_unique<app::KvStore>(),
        std::make_unique<core::NeverReject>());
    leader = std::make_unique<Probe>(sim, *net, consensus::replica_address(ReplicaId{0}));
    peer = std::make_unique<Probe>(sim, *net, consensus::replica_address(ReplicaId{2}));
    client = std::make_unique<Probe>(sim, *net, consensus::client_address(ClientId{0}),
                                     sim::NodeKind::Client);
  }

  static core::IdemConfig make_config() {
    core::IdemConfig config;
    config.n = 3;
    config.f = 1;
    config.reject_threshold = 4;  // r_max = 12: GC paths reachable quickly
    config.viewchange_timeout = 10 * kSecond;  // quiet unless a test wants it
    config.checkpoint_interval = 4;
    return config;
  }

  msg::Request request(std::uint64_t onr, const char* key = "k") {
    return msg::Request(RequestId{ClientId{0}, OpNum{onr}},
                        test::put_cmd(key, "v" + std::to_string(onr)));
  }

  void client_sends(const msg::Request& req) {
    client->inject(replica->id(), std::make_shared<const msg::Request>(req));
  }

  void leader_proposes(std::uint64_t sqn, std::vector<RequestId> ids, std::uint64_t view = 0) {
    auto propose = std::make_shared<msg::Propose>();
    propose->view = ViewId{view};
    propose->sqn = SeqNum{sqn};
    propose->ids = std::move(ids);
    leader->inject(replica->id(), std::move(propose));
  }

  void peer_commits(std::uint64_t sqn, std::vector<RequestId> ids, std::uint64_t view = 0) {
    auto commit = std::make_shared<msg::Commit>();
    commit->from = ReplicaId{2};
    commit->view = ViewId{view};
    commit->sqn = SeqNum{sqn};
    commit->ids = std::move(ids);
    peer->inject(replica->id(), std::move(commit));
  }

  void settle(Duration span = 100 * kMillisecond) { sim.run_for(span); }
};

TEST(IdemReplicaUnit, AcceptSendsRequire) {
  ReplicaFixture f;
  f.client_sends(f.request(1));
  f.settle();
  auto requires_seen = f.leader->received_of<msg::Require>();
  ASSERT_EQ(requires_seen.size(), 1u);
  EXPECT_EQ(requires_seen[0]->from, ReplicaId{1});
  ASSERT_EQ(requires_seen[0]->ids.size(), 1u);
  EXPECT_EQ(requires_seen[0]->ids[0].onr, OpNum{1});
  EXPECT_EQ(f.replica->active_requests(), 1u);
}

TEST(IdemReplicaUnit, ProposeTriggersCommitToAll) {
  ReplicaFixture f;
  auto req = f.request(1);
  f.client_sends(req);
  f.settle();
  f.leader_proposes(0, {req.id});
  f.settle();
  ASSERT_EQ(f.leader->received_of<msg::Commit>().size(), 1u);
  ASSERT_EQ(f.peer->received_of<msg::Commit>().size(), 1u);
  // The commit echoes the binding.
  EXPECT_EQ(f.peer->received_of<msg::Commit>()[0]->ids[0], req.id);
}

TEST(IdemReplicaUnit, ExecutesAfterQuorumButNotBefore) {
  // f = 2 (n = 5) makes sub-quorum states observable: a PROPOSE gives two
  // votes (leader's implied + own), and the quorum is three.
  auto config = ReplicaFixture::make_config();
  config.n = 5;
  config.f = 2;
  ReplicaFixture f(config);
  auto req = f.request(1);
  f.client_sends(req);
  f.settle();
  f.leader_proposes(0, {req.id});
  f.settle();
  EXPECT_EQ(f.replica->next_execute().value, 0u);  // 2 votes < quorum 3
  // A third replica's commit completes the quorum.
  f.peer_commits(0, {req.id});
  f.settle();
  EXPECT_EQ(f.replica->next_execute().value, 1u);
  EXPECT_EQ(f.replica->last_executed(ClientId{0}), OpNum{1});
  EXPECT_EQ(f.replica->active_requests(), 0u);
}

TEST(IdemReplicaUnit, CommitBeforeProposeAdoptsBinding) {
  ReplicaFixture f;
  auto req = f.request(1);
  f.client_sends(req);
  f.settle();
  // Two peer-side votes arrive before/without the PROPOSE: commit from
  // replica 2 carries the binding, and the leader's proposal is implied
  // by its role, so the replica's own commit completes agreement.
  f.peer_commits(0, {req.id});
  f.settle();
  // peer commit (1) + leader implied (1) + own (1) >= quorum 2.
  EXPECT_EQ(f.replica->next_execute().value, 1u);
}

TEST(IdemReplicaUnit, ExecutionStrictlyInOrder) {
  ReplicaFixture f;
  auto r1 = f.request(1);
  auto r2 = f.request(2, "k2");
  f.client_sends(r1);
  f.settle();
  // Instance 1 commits first; instance 0 is still unknown.
  f.leader_proposes(1, {r2.id});
  f.settle();
  EXPECT_EQ(f.replica->next_execute().value, 0u);  // blocked on the gap
  f.leader_proposes(0, {r1.id});
  f.settle();
  // Instance 0 commits; but wait: r2's body never arrived via a client...
  // it is fetched. Give the fetch time to resolve against the peer.
  EXPECT_GE(f.replica->next_execute().value, 1u);
}

TEST(IdemReplicaUnit, MissingBodyTriggersFetch) {
  ReplicaFixture f;
  RequestId unknown{ClientId{0}, OpNum{1}};
  f.leader_proposes(0, {unknown});
  f.settle();
  // Committed (leader + own votes) but the body is missing: FETCH goes out.
  std::size_t fetches = f.leader->received_of<msg::Fetch>().size() +
                        f.peer->received_of<msg::Fetch>().size();
  EXPECT_GE(fetches, 1u);
  EXPECT_EQ(f.replica->next_execute().value, 0u);

  // Answer the fetch with a FORWARD; execution proceeds.
  auto forward = std::make_shared<msg::Forward>();
  forward->from = ReplicaId{0};
  forward->requests.emplace_back(unknown, test::put_cmd("k", "v"));
  f.leader->inject(f.replica->id(), std::move(forward));
  f.settle();
  EXPECT_EQ(f.replica->next_execute().value, 1u);
}

TEST(IdemReplicaUnit, StaleViewMessagesIgnored) {
  ReplicaFixture f;
  // Move the replica to view 3 via a propose from the view-3 leader
  // (replica 0 = leader of view 3 with n=3? view 3 % 3 = 0: yes).
  f.leader_proposes(0, {}, /*view=*/3);
  f.settle();
  EXPECT_EQ(f.replica->view().value, 3u);

  // A propose from an old view must not rebind the slot.
  auto req = f.request(1);
  f.client_sends(req);
  f.settle();
  std::size_t commits_before = f.peer->received_of<msg::Commit>().size();
  f.leader_proposes(1, {req.id}, /*view=*/1);
  f.settle();
  EXPECT_EQ(f.peer->received_of<msg::Commit>().size(), commits_before);
}

TEST(IdemReplicaUnit, DuplicateRequestIgnoredWhileActive) {
  ReplicaFixture f;
  auto req = f.request(1);
  f.client_sends(req);
  f.client_sends(req);
  f.client_sends(req);
  f.settle();
  EXPECT_EQ(f.replica->stats().accepted, 1u);
  EXPECT_EQ(f.replica->active_requests(), 1u);
}

TEST(IdemReplicaUnit, ExecutedRequestGetsReReply) {
  ReplicaFixture f;
  auto req = f.request(1);
  f.client_sends(req);
  f.settle();
  f.leader_proposes(0, {req.id});
  f.settle();
  ASSERT_EQ(f.replica->next_execute().value, 1u);

  // The client retransmits (e.g. the leader's reply was lost with the
  // leader): the replica answers from its reply cache.
  std::size_t replies_before = f.client->received_of<msg::Reply>().size();
  f.client_sends(req);
  f.settle();
  EXPECT_EQ(f.client->received_of<msg::Reply>().size(), replies_before + 1);
}

TEST(IdemReplicaUnit, NoOpInstanceExecutesWithoutEffect) {
  ReplicaFixture f;
  f.leader_proposes(0, {});  // empty batch = no-op filler
  f.settle();
  EXPECT_EQ(f.replica->next_execute().value, 1u);
  EXPECT_EQ(f.replica->stats().executed, 0u);
}

TEST(IdemReplicaUnit, WindowAdvancesByImplicitGc) {
  ReplicaFixture f;
  // Execute r_max + 1 = 13 instances; the window start must advance once
  // sequence numbers beyond sqn_low + r_max are observed.
  for (std::uint64_t i = 0; i < 13; ++i) {
    auto req = f.request(i + 1);
    f.client_sends(req);
    f.settle(20 * kMillisecond);
    f.leader_proposes(i, {req.id});
    f.settle(20 * kMillisecond);
  }
  EXPECT_EQ(f.replica->next_execute().value, 13u);
  EXPECT_GT(f.replica->window_start().value, 0u);
}

TEST(IdemReplicaUnit, ForwardTimerRelaysUnexecutedRequest) {
  ReplicaFixture f;
  auto req = f.request(1);
  f.client_sends(req);
  // No propose ever arrives: after the forward timeout the replica relays
  // the request to its peers.
  f.settle(50 * kMillisecond);
  EXPECT_GE(f.peer->received_of<msg::Forward>().size(), 1u);
  EXPECT_GE(f.replica->stats().forwards_sent, 1u);
}

TEST(IdemReplicaUnit, NoForwardAfterExecution) {
  ReplicaFixture f;
  auto req = f.request(1);
  f.client_sends(req);
  f.settle(2 * kMillisecond);
  f.leader_proposes(0, {req.id});
  // Execution happens well before the 10 ms forward timeout.
  f.settle(50 * kMillisecond);
  EXPECT_EQ(f.replica->stats().forwards_sent, 0u);
}

TEST(IdemReplicaUnit, ViewChangeMessageCarriesWindow) {
  auto config = ReplicaFixture::make_config();
  config.viewchange_timeout = 200 * kMillisecond;
  ReplicaFixture f(config);
  auto req = f.request(1);
  f.client_sends(req);
  f.settle(10 * kMillisecond);
  f.leader_proposes(0, {req.id});
  f.settle(10 * kMillisecond);
  // A second request is accepted but never proposed: the leader is
  // "crashed". The progress timer fires and the VIEWCHANGE must carry the
  // bound slot 0.
  f.client_sends(f.request(2, "other"));
  f.settle(500 * kMillisecond);
  auto viewchanges = f.peer->received_of<msg::ViewChange>();
  ASSERT_GE(viewchanges.size(), 1u);
  EXPECT_EQ(viewchanges[0]->target.value, 1u);
  ASSERT_GE(viewchanges[0]->proposals.size(), 1u);
  EXPECT_EQ(viewchanges[0]->proposals[0].sqn.value, 0u);
  EXPECT_EQ(viewchanges[0]->proposals[0].items[0], req.id);
  // It also re-sends its REQUIREs to the prospective leader (replica 1 is
  // itself the leader of view 1 here, so nothing goes on the wire; the
  // stats record the view change instead).
  EXPECT_GE(f.replica->stats().view_changes, 1u);
}


TEST(IdemReplicaUnit, CachedRejectionIsReTested) {
  // The rejected-request cache keeps bodies, not verdicts: a retransmitted
  // request is accepted once the load has dropped (Section 5.1 allows the
  // test to answer differently over time).
  sim::Simulator sim(41);
  sim::SimNetwork net(sim, {});
  core::IdemConfig rc = ReplicaFixture::make_config();
  rc.reject_threshold = 1;
  core::IdemReplica replica(sim, net, ReplicaId{1}, rc, std::make_unique<app::KvStore>(),
                            std::make_unique<core::TailDrop>());
  Probe leader(sim, net, consensus::replica_address(ReplicaId{0}));
  Probe client(sim, net, consensus::client_address(ClientId{0}), sim::NodeKind::Client);
  Probe client2(sim, net, consensus::client_address(ClientId{1}), sim::NodeKind::Client);

  // Fill the single slot with client 1's request...
  msg::Request blocker(RequestId{ClientId{1}, OpNum{1}}, test::put_cmd("b", "v"));
  client2.inject(replica.id(), std::make_shared<const msg::Request>(blocker));
  sim.run_for(5 * kMillisecond);
  ASSERT_EQ(replica.active_requests(), 1u);

  // ...so client 0's request is rejected and cached.
  msg::Request req(RequestId{ClientId{0}, OpNum{1}}, test::put_cmd("k", "v"));
  client.inject(replica.id(), std::make_shared<const msg::Request>(req));
  sim.run_for(5 * kMillisecond);
  EXPECT_EQ(replica.stats().rejected, 1u);

  // The blocker executes, freeing the slot.
  leader.inject(replica.id(), [&] {
    auto propose = std::make_shared<msg::Propose>();
    propose->view = ViewId{0};
    propose->sqn = SeqNum{0};
    propose->ids = {blocker.id};
    return propose;
  }());
  sim.run_for(5 * kMillisecond);
  ASSERT_EQ(replica.active_requests(), 0u);

  // The client retransmits: this time the test passes and the request is
  // promoted out of the rejected cache (accepted, not re-rejected).
  client.inject(replica.id(), std::make_shared<const msg::Request>(req));
  sim.run_for(5 * kMillisecond);
  EXPECT_EQ(replica.stats().rejected, 1u);  // unchanged
  EXPECT_EQ(replica.stats().accepted, 2u);
  EXPECT_EQ(replica.active_requests(), 1u);
}

TEST(IdemReplicaUnit, FetchPrefetchCoversCommittedBacklog) {
  // Several instances commit whose bodies this replica never saw; the
  // fetches for ALL of them must go out at once, not one per round trip.
  ReplicaFixture f;
  std::vector<RequestId> unknown;
  for (std::uint64_t i = 1; i <= 6; ++i) unknown.push_back(RequestId{ClientId{0}, OpNum{i}});
  for (std::uint64_t sqn = 0; sqn < 6; ++sqn) {
    f.leader_proposes(sqn, {unknown[sqn]});
  }
  // Let the proposes arrive but answer no fetches yet.
  f.settle(3 * kMillisecond);
  std::size_t fetches = f.leader->received_of<msg::Fetch>().size() +
                        f.peer->received_of<msg::Fetch>().size();
  EXPECT_GE(fetches, 6u) << "prefetch must request every committed instance's body";
  EXPECT_EQ(f.replica->next_execute().value, 0u);

  // Answer everything in one forward: execution drains the whole backlog.
  auto forward = std::make_shared<msg::Forward>();
  forward->from = ReplicaId{0};
  for (std::uint64_t i = 0; i < 6; ++i) {
    forward->requests.emplace_back(unknown[i], test::put_cmd("k" + std::to_string(i), "v"));
  }
  f.leader->inject(f.replica->id(), std::move(forward));
  f.settle(10 * kMillisecond);
  EXPECT_EQ(f.replica->next_execute().value, 6u);
}


TEST(IdemReplicaUnit, UnsolicitedStateResponseIgnored) {
  ReplicaFixture f;
  // Execute one request so there is state to protect.
  auto req = f.request(1);
  f.client_sends(req);
  f.settle();
  f.leader_proposes(0, {req.id});
  f.settle();
  ASSERT_EQ(f.replica->next_execute().value, 1u);
  auto before = f.replica->state_machine().snapshot();

  // An unsolicited checkpoint claiming a newer state must be dropped: the
  // replica never asked for it.
  auto response = std::make_shared<msg::StateResponse>();
  response->from = ReplicaId{2};
  response->upto = SeqNum{50};
  response->snapshot = app::KvStore().snapshot();  // empty store
  f.peer->inject(f.replica->id(), std::move(response));
  f.settle();
  EXPECT_EQ(f.replica->state_machine().snapshot(), before);
  EXPECT_EQ(f.replica->next_execute().value, 1u);
  EXPECT_EQ(f.replica->stats().state_transfers, 0u);
}

TEST(IdemReplicaUnit, MalformedSnapshotSurvived) {
  // Force a legitimate state request, then answer it with garbage: the
  // replica must neither crash nor lose its current state.
  auto config = ReplicaFixture::make_config();
  ReplicaFixture f(config);
  auto req = f.request(1);
  f.client_sends(req);
  f.settle();
  f.leader_proposes(0, {req.id});
  f.settle();
  auto before = f.replica->state_machine().snapshot();

  // Observing a sequence number far beyond the window makes the replica
  // request state from the message's sender (the peer).
  f.peer_commits(100, {});
  f.settle();
  ASSERT_GE(f.peer->received_of<msg::StateRequest>().size(), 1u);

  auto response = std::make_shared<msg::StateResponse>();
  response->from = ReplicaId{2};
  response->upto = SeqNum{90};
  response->snapshot = {std::byte{0xFF}, std::byte{0xFF}, std::byte{0xFF}};  // garbage
  f.peer->inject(f.replica->id(), std::move(response));
  f.settle();
  // Still alive, state untouched.
  EXPECT_EQ(f.replica->state_machine().snapshot(), before);
}

TEST(IdemReplicaUnit, RejectingReplicaCachesBody) {
  auto config = ReplicaFixture::make_config();
  ReplicaFixture f(config);
  // Swap in an always-reject test by saturating: threshold r=4 and the
  // replica is a NeverReject fixture, so instead build a dedicated
  // replica with TailDrop and r=0 via a fresh fixture-less setup.
  sim::Simulator sim(3);
  sim::SimNetwork net(sim, {});
  core::IdemConfig rc = ReplicaFixture::make_config();
  rc.reject_threshold = 0;
  core::IdemReplica replica(sim, net, ReplicaId{1}, rc, std::make_unique<app::KvStore>(),
                            std::make_unique<core::TailDrop>());
  Probe leader(sim, net, consensus::replica_address(ReplicaId{0}));
  Probe client(sim, net, consensus::client_address(ClientId{0}), sim::NodeKind::Client);

  msg::Request req(RequestId{ClientId{0}, OpNum{1}}, test::put_cmd("k", "v"));
  client.inject(replica.id(), std::make_shared<const msg::Request>(req));
  sim.run_for(10 * kMillisecond);
  EXPECT_EQ(replica.stats().rejected, 1u);
  ASSERT_EQ(client.received_of<msg::Reject>().size(), 1u);

  // The rejected body is still served to a FETCH from the cache.
  auto fetch = std::make_shared<msg::Fetch>();
  fetch->from = ReplicaId{0};
  fetch->id = req.id;
  leader.inject(replica.id(), std::move(fetch));
  sim.run_for(10 * kMillisecond);
  ASSERT_EQ(leader.received_of<msg::Forward>().size(), 1u);
  EXPECT_EQ(leader.received_of<msg::Forward>()[0]->requests[0].id, req.id);
}

}  // namespace
}  // namespace idem
