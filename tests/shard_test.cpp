// Sharding subsystem: shard map algebra + JSON, the per-group admission
// gate, the client-side router's redirect protocol, and the sharded sim
// harness end-to-end — multi-group serving, elastic range migration under
// load (linearizable across the epoch flip), and a leader crash in the
// middle of the split handshake.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "app/kv_store.hpp"
#include "check/linearizability.hpp"
#include "common/rng.hpp"
#include "shard/gate.hpp"
#include "shard/router.hpp"
#include "shard/shard_map.hpp"
#include "shard/sim_cluster.hpp"

namespace idem::shard {
namespace {

std::vector<std::byte> put(const std::string& key, const std::string& value) {
  app::KvCommand cmd;
  cmd.op = app::KvOp::Put;
  cmd.key = key;
  cmd.value = value;
  return cmd.encode();
}

std::vector<std::byte> get(const std::string& key) {
  app::KvCommand cmd;
  cmd.op = app::KvOp::Get;
  cmd.key = key;
  return cmd.encode();
}

/// Some key owned by `group` under `map` ("k<i>" with the lowest such i).
std::string key_owned_by(const ShardMap& map, GroupId group) {
  for (std::uint64_t i = 0;; ++i) {
    std::string key = "k" + std::to_string(i);
    if (map.group_for_key(key) == group) return key;
  }
}

// --- ShardMap -------------------------------------------------------------

TEST(ShardMap, UniformPartitionCoversTheHashSpace) {
  const ShardMap map = ShardMap::uniform(4);
  EXPECT_TRUE(map.valid());
  EXPECT_EQ(map.epoch(), 1u);
  ASSERT_EQ(map.entries().size(), 4u);
  EXPECT_EQ(map.group_count(), 4u);
  EXPECT_EQ(map.entries()[0].begin, 0u);
  // Stride covers the space: segment i starts at i * ceil(2^64 / 4).
  const std::uint64_t stride = map.entries()[1].begin;
  EXPECT_EQ(map.entries()[2].begin, 2 * stride);
  EXPECT_EQ(map.entries()[3].begin, 3 * stride);
}

TEST(ShardMap, HashRangeBoundariesAreBeginInclusiveEndExclusive) {
  const ShardMap map(1, {{0, 0}, {100, 1}, {200, 2}});
  ASSERT_TRUE(map.valid());
  EXPECT_EQ(map.group_for_hash(0), 0u);
  EXPECT_EQ(map.group_for_hash(99), 0u);
  EXPECT_EQ(map.group_for_hash(100), 1u);  // boundary belongs to the upper segment
  EXPECT_EQ(map.group_for_hash(199), 1u);
  EXPECT_EQ(map.group_for_hash(200), 2u);
  EXPECT_EQ(map.group_for_hash(~0ull), 2u);  // last segment runs to the top
}

TEST(ShardMap, RangeMoveBumpsEpochAndCoalesces) {
  const ShardMap map = ShardMap::uniform(2);
  const std::uint64_t mid = map.entries()[1].begin;

  // Carve the upper quarter of group 0's range over to group 1.
  const ShardMap moved = map.with_range_moved(mid / 2, mid, 1);
  EXPECT_EQ(moved.epoch(), 2u);
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(moved.group_for_hash(mid / 2 - 1), 0u);
  EXPECT_EQ(moved.group_for_hash(mid / 2), 1u);
  EXPECT_EQ(moved.group_for_hash(mid), 1u);
  // [mid/2, mid) -> 1 is adjacent to [mid, top) -> 1: one segment.
  ASSERT_EQ(moved.entries().size(), 2u);

  // Moving it back restores the uniform shape (epoch keeps advancing).
  const ShardMap back = moved.with_range_moved(mid / 2, mid, 0);
  EXPECT_EQ(back.epoch(), 3u);
  ASSERT_EQ(back.entries().size(), 2u);
  EXPECT_EQ(back.entries()[1].begin, mid);
}

TEST(ShardMap, MoveToTopOfSpace) {
  const ShardMap map = ShardMap::uniform(1);
  const ShardMap moved = map.with_range_moved(1ull << 63, 0, 1);  // end 0 = top
  EXPECT_EQ(moved.group_for_hash((1ull << 63) - 1), 0u);
  EXPECT_EQ(moved.group_for_hash(1ull << 63), 1u);
  EXPECT_EQ(moved.group_for_hash(~0ull), 1u);
  EXPECT_EQ(moved.group_count(), 2u);
}

TEST(ShardMap, JsonRoundTripFuzz) {
  Rng rng(20260809, 0);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t segments = 1 + rng.uniform_int(0, 7);
    std::vector<ShardMap::Entry> entries;
    std::uint64_t begin = 0;
    for (std::size_t s = 0; s < segments; ++s) {
      entries.push_back({begin, static_cast<GroupId>(rng.uniform_int(0, 5))});
      // Strictly increasing boundaries, occasionally beyond 2^53 to prove
      // the JSON path does not round large boundaries through doubles.
      begin += 1 + rng.next_u64() / (2 * segments);
      if (begin == 0) break;
    }
    const ShardMap map(1 + rng.uniform_int(0, 100), entries);
    ASSERT_TRUE(map.valid());
    const ShardMap reparsed = ShardMap::parse(map.dump());
    EXPECT_EQ(map, reparsed) << "iteration " << iter << ": " << map.dump();
  }
}

TEST(ShardMap, FromJsonRejectsNonPartitions) {
  EXPECT_THROW(ShardMap::parse(R"({"epoch":1,"ranges":[]})"), json::ParseError);
  // First boundary must be 0.
  EXPECT_THROW(
      ShardMap::parse(R"({"epoch":1,"ranges":[{"begin":5,"group":0}]})"),
      json::ParseError);
  // Boundaries must strictly increase.
  EXPECT_THROW(ShardMap::parse(
                   R"({"epoch":1,"ranges":[{"begin":0,"group":0},{"begin":0,"group":1}]})"),
               json::ParseError);
}

TEST(ShardMap, PeekCommandKeyReadsEncodedCommands) {
  const std::vector<std::byte> encoded = put("user42", "value");
  const auto key = peek_command_key(encoded);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, "user42");

  EXPECT_FALSE(peek_command_key({}).has_value());
  // Truncated: claims a longer key than the buffer holds.
  std::vector<std::byte> truncated(encoded.begin(), encoded.begin() + 2);
  EXPECT_FALSE(peek_command_key(truncated).has_value());
}

TEST(ShardMap, HashIsStable) {
  // FNV-1a 64 + the murmur3 fmix64 finalizer; pinned so maps in artifacts
  // stay valid across platforms and compilers.
  EXPECT_EQ(ShardMap::hash_key(""), 17280346270528514342ull);
  EXPECT_EQ(ShardMap::hash_key("a"), 9413272369427828315ull);
}

// --- GroupShardGate -------------------------------------------------------

TEST(ShardGate, VerdictsFollowTheMap) {
  const ShardMap map = ShardMap::uniform(2);
  GroupShardGate gate(0, map);

  const std::string mine = key_owned_by(map, 0);
  const std::string foreign = key_owned_by(map, 1);

  const auto own = gate.admit(put(mine, "v"));
  EXPECT_EQ(own.kind, core::ShardVerdict::Kind::Mine);

  const auto redirect = gate.admit(put(foreign, "v"));
  EXPECT_EQ(redirect.kind, core::ShardVerdict::Kind::WrongShard);
  EXPECT_EQ(redirect.home_group, 1u);
  EXPECT_EQ(redirect.map_epoch, 1u);

  // Malformed commands are admitted: the state machine owns BadRequest.
  EXPECT_EQ(gate.admit({}).kind, core::ShardVerdict::Kind::Mine);

  gate.freeze();
  EXPECT_EQ(gate.admit(put(mine, "v")).kind, core::ShardVerdict::Kind::Frozen);
  gate.unfreeze();
  EXPECT_EQ(gate.admit(put(mine, "v")).kind, core::ShardVerdict::Kind::Mine);

  const auto stats = gate.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.redirected, 1u);
  EXPECT_EQ(stats.frozen, 1u);
}

TEST(ShardGate, InstallIgnoresStaleEpochs) {
  GroupShardGate gate(0, ShardMap::uniform(2));
  const ShardMap newer = ShardMap::uniform(2).with_range_moved(0, 1000, 1);
  gate.install(newer);
  EXPECT_EQ(gate.epoch(), 2u);
  gate.install(ShardMap::uniform(2));  // epoch 1: late coordinator message
  EXPECT_EQ(gate.epoch(), 2u);
  EXPECT_EQ(gate.map(), newer);
}

// --- ShardRouter ----------------------------------------------------------

/// ServiceClient that always answers WrongShard pointing at `home`,
/// claiming map epoch `epoch`.
class AlwaysWrongShard final : public consensus::ServiceClient {
 public:
  AlwaysWrongShard(GroupId home, std::uint64_t epoch) : home_(home), epoch_(epoch) {}

  void invoke(std::vector<std::byte> command, Callback callback) override {
    (void)command;
    ++invocations;
    consensus::Outcome outcome;
    outcome.kind = consensus::Outcome::Kind::Rejected;
    outcome.redirect_reason = RejectReason::WrongShard;
    outcome.redirect_epoch = epoch_;
    outcome.redirect_group = home_;
    callback(outcome);
  }
  ClientId client_id() const override { return ClientId{0}; }
  bool busy() const override { return false; }

  int invocations = 0;

 private:
  GroupId home_;
  std::uint64_t epoch_;
};

TEST(ShardRouter, StaleEpochRedirectLoopEndsAtTheHopBudget) {
  // Two groups pointing at each other — an inconsistent deployment a
  // router must survive. No map_source: nothing can break the cycle.
  AlwaysWrongShard group0(1, /*epoch=*/1);  // stale epoch: no refresh signal
  AlwaysWrongShard group1(0, /*epoch=*/1);
  RouterConfig config;
  config.max_hops = 4;
  ShardRouter router(ShardMap::uniform(2), {&group0, &group1}, config);

  bool done = false;
  router.invoke(put("k", "v"), [&done](const consensus::Outcome& outcome) {
    done = true;
    EXPECT_EQ(outcome.kind, consensus::Outcome::Kind::Rejected);
  });
  ASSERT_TRUE(done);
  EXPECT_FALSE(router.busy());
  // Hop 0 plus max_hops redirects were issued, then the budget ended it.
  EXPECT_EQ(group0.invocations + group1.invocations, 5);
  EXPECT_EQ(router.stats().redirects, 5u);
  EXPECT_EQ(router.stats().redirect_drops, 1u);
}

TEST(ShardRouter, RefreshesFromMapSourceOnNewerEpochRedirects) {
  const ShardMap initial = ShardMap::uniform(2);
  const ShardMap current = initial.with_range_moved(0, 0, 1);  // everything -> group 1

  // Group 0 redirects with the newer epoch; group 1 never sees a call in
  // this test's first phase because the refreshed map routes directly.
  AlwaysWrongShard group0(1, /*epoch=*/2);
  class Replies final : public consensus::ServiceClient {
   public:
    void invoke(std::vector<std::byte>, Callback callback) override {
      ++invocations;
      consensus::Outcome outcome;
      outcome.kind = consensus::Outcome::Kind::Reply;
      callback(outcome);
    }
    ClientId client_id() const override { return ClientId{0}; }
    bool busy() const override { return false; }
    int invocations = 0;
  } group1;

  RouterConfig config;
  config.map_source = [&current] { return current; };
  ShardRouter router(initial, {&group0, &group1}, config);

  bool done = false;
  router.invoke(put(key_owned_by(initial, 0), "v"), [&done](const consensus::Outcome& outcome) {
    done = true;
    EXPECT_EQ(outcome.kind, consensus::Outcome::Kind::Reply);
  });
  ASSERT_TRUE(done);
  EXPECT_EQ(router.map().epoch(), 2u);
  EXPECT_EQ(router.stats().map_refreshes, 1u);

  // The refreshed map routes everything straight to group 1 now.
  const int before = group0.invocations;
  router.invoke(put("other", "v"), [](const consensus::Outcome&) {});
  EXPECT_EQ(group0.invocations, before);
  EXPECT_GE(group1.invocations, 2);
}

// --- ShardedSimCluster ----------------------------------------------------

ShardedSimConfig small_cluster(std::size_t groups, std::size_t routers) {
  ShardedSimConfig config;
  config.groups = groups;
  config.routers = routers;
  config.seed = 7;
  return config;
}

TEST(ShardedSim, ServesAcrossGroupsWithoutRedirects) {
  ShardedSimCluster cluster(small_cluster(2, 4));

  std::vector<SimLoadSpec> specs;
  for (std::size_t r = 0; r < 4; ++r) {
    SimLoadSpec spec;
    spec.router = r;
    spec.command = [](Rng& rng) {
      app::KvCommand cmd;
      cmd.op = app::KvOp::Put;
      cmd.key = "k" + std::to_string(rng.uniform_int(0, 999));
      cmd.value = "v";
      return cmd;
    };
    specs.push_back(spec);
  }
  const auto stats = cluster.run_load(specs, 2 * kSecond);

  std::uint64_t replies = 0;
  for (const auto& s : stats) replies += s.replies;
  EXPECT_GT(replies, 100u);
  // A fresh uniform map routes every key straight home.
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.router(r).stats().redirects, 0u);
  }
  EXPECT_GT(cluster.gate(0).stats().admitted, 0u);
  EXPECT_GT(cluster.gate(1).stats().admitted, 0u);
  EXPECT_EQ(cluster.gate(0).stats().redirected, 0u);
  EXPECT_EQ(cluster.gate(1).stats().redirected, 0u);
}

TEST(ShardedSim, WrongShardRejectsRedirectStaleRouters) {
  ShardedSimCluster cluster(small_cluster(2, 2));
  // Publish a newer map (swap ownership of the lower half) *without*
  // telling the routers: their cached epoch-1 map is now stale.
  const std::uint64_t mid = cluster.map().entries()[1].begin;
  ShardMap swapped = cluster.map().with_range_moved(0, mid, 1);
  cluster.publish(swapped);

  std::vector<SimLoadSpec> specs;
  for (std::size_t r = 0; r < 2; ++r) {
    SimLoadSpec spec;
    spec.router = r;
    spec.command = [](Rng& rng) {
      app::KvCommand cmd;
      cmd.op = app::KvOp::Put;
      cmd.key = "k" + std::to_string(rng.uniform_int(0, 999));
      cmd.value = "v";
      return cmd;
    };
    specs.push_back(spec);
  }
  const auto stats = cluster.run_load(specs, 2 * kSecond);

  std::uint64_t replies = 0;
  for (const auto& s : stats) replies += s.replies;
  EXPECT_GT(replies, 100u);

  // The first operation whose key moved draws a WrongShard REJECT; the
  // map_source refresh then retires the stale map for good.
  std::uint64_t redirects = 0;
  std::uint64_t refreshes = 0;
  for (std::size_t r = 0; r < 2; ++r) {
    redirects += cluster.router(r).stats().redirects;
    refreshes += cluster.router(r).stats().map_refreshes;
    EXPECT_EQ(cluster.router(r).map().epoch(), 2u);
    EXPECT_EQ(cluster.router(r).stats().redirect_drops, 0u);
  }
  EXPECT_GT(redirects, 0u);
  EXPECT_GT(refreshes, 0u);

  std::uint64_t wrong_shard = 0;
  for (std::size_t g = 0; g < 2; ++g) {
    for (std::size_t i = 0; i < cluster.config().idem.n; ++i) {
      wrong_shard += cluster.replica(g, i).stats().wrong_shard;
    }
  }
  EXPECT_GT(wrong_shard, 0u);
}

TEST(ShardedSim, LiveSplitIsLinearizableAcrossTheEpochFlip) {
  ShardedSimConfig config = small_cluster(2, 3);
  config.record_history = true;
  ShardedSimCluster cluster(config);
  // Start with group 0 owning everything: epoch 2, group 1 idle.
  cluster.publish(cluster.map().with_range_moved(0, 0, 0));
  ASSERT_EQ(cluster.map().epoch(), 2u);

  std::vector<SimLoadSpec> specs;
  for (std::size_t r = 0; r < 3; ++r) {
    SimLoadSpec spec;
    spec.router = r;
    spec.command = [](Rng& rng) {
      app::KvCommand cmd;
      const bool read = rng.bernoulli(0.5);
      cmd.op = read ? app::KvOp::Get : app::KvOp::Put;
      cmd.key = "k" + std::to_string(rng.uniform_int(0, 49));
      if (!read) cmd.value = "v" + std::to_string(rng.uniform_int(0, 9));
      return cmd;
    };
    specs.push_back(spec);
  }

  const auto before = cluster.run_load(specs, kSecond);
  // Split the upper half of the hash space off to group 1, live.
  ASSERT_TRUE(cluster.run_split(1ull << 63, 0, 0, 1));
  EXPECT_EQ(cluster.map().epoch(), 3u);
  const auto after = cluster.run_load(specs, kSecond);

  std::uint64_t replies_before = 0;
  std::uint64_t replies_after = 0;
  for (const auto& s : before) replies_before += s.replies;
  for (const auto& s : after) replies_after += s.replies;
  EXPECT_GT(replies_before, 50u);
  EXPECT_GT(replies_after, 50u);

  // Both groups serve now, and the routers learned the new map through
  // WrongShard redirects.
  EXPECT_GT(cluster.gate(1).stats().admitted, 0u);
  std::uint64_t redirects = 0;
  for (std::size_t r = 0; r < 3; ++r) redirects += cluster.router(r).stats().redirects;
  EXPECT_GT(redirects, 0u);

  const auto result = check::check_linearizable(cluster.history(), check::KvModel{});
  EXPECT_TRUE(result.linearizable) << result.error;
}

TEST(ShardedSim, LeaderCrashMidSplitRecoversOrAborts) {
  ShardedSimConfig config = small_cluster(2, 2);
  config.record_history = true;
  ShardedSimCluster cluster(config);
  cluster.publish(cluster.map().with_range_moved(0, 0, 0));

  std::vector<SimLoadSpec> specs;
  for (std::size_t r = 0; r < 2; ++r) {
    SimLoadSpec spec;
    spec.router = r;
    spec.command = [](Rng& rng) {
      app::KvCommand cmd;
      cmd.op = app::KvOp::Put;
      cmd.key = "k" + std::to_string(rng.uniform_int(0, 19));
      cmd.value = "v";
      return cmd;
    };
    specs.push_back(spec);
  }
  (void)cluster.run_load(specs, kSecond);

  // Freeze, then kill the source leader before the drain begins: the
  // split must either complete against the post-view-change group or
  // abort cleanly (freeze lifted, map unchanged) — never hang or corrupt.
  cluster.gate(0).freeze();
  const std::size_t leader = cluster.leader_of(0);
  ASSERT_LT(leader, config.idem.n);
  cluster.crash_replica(0, leader);
  const bool split = cluster.run_split(1ull << 63, 0, 0, 1, 10 * kSecond);
  EXPECT_FALSE(cluster.gate(0).frozen());
  EXPECT_EQ(cluster.map().epoch(), split ? 3u : 2u);

  // The deployment keeps serving with the surviving majority either way.
  const auto after = cluster.run_load(specs, 2 * kSecond);
  std::uint64_t replies = 0;
  for (const auto& s : after) replies += s.replies;
  EXPECT_GT(replies, 20u);

  const auto result = check::check_linearizable(cluster.history(), check::KvModel{});
  EXPECT_TRUE(result.linearizable) << result.error;
}

}  // namespace
}  // namespace idem::shard
