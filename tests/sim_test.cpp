// Unit tests for the discrete-event simulation substrate: event queue,
// simulator, fair-loss network, and the node CPU/service-queue model.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace idem::sim {
namespace {

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAtEqualTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.push(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceIsNoop) {
  EventQueue q;
  EventId id = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.push(10, [] {});
  q.push(20, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_after(100, [&] { seen = sim.now(); });
  sim.run_until(1000);
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, RunUntilDoesNotExecuteLaterEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(500, [&] { fired = true; });
  sim.run_until(499);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), 499);
  sim.run_until(500);
  EXPECT_TRUE(fired);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<Time> times;
  sim.schedule_after(10, [&] {
    times.push_back(sim.now());
    sim.schedule_after(10, [&] { times.push_back(sim.now()); });
  });
  sim.run_until(100);
  EXPECT_EQ(times, (std::vector<Time>{10, 20}));
}

TEST(Simulator, RngStreamsAreStable) {
  Simulator a(42), b(42);
  EXPECT_EQ(a.rng("x").next_u64(), b.rng("x").next_u64());
  Simulator c(43);
  EXPECT_NE(a.rng("x").next_u64(), c.rng("x").next_u64());
}

TEST(Simulator, RunWhileStops) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 100; ++i) sim.schedule_after(i, [&] { ++count; });
  sim.run_while([&] { return count < 10; });
  EXPECT_EQ(count, 10);
}

// ---------------------------------------------------------------------------
// Network + Node
// ---------------------------------------------------------------------------

struct TestPayload final : Payload {
  std::size_t size;
  explicit TestPayload(std::size_t size_) : size(size_) {}
  std::size_t wire_size() const override { return size; }
  std::string kind() const override { return "TEST"; }
};

class RecordingNode final : public Node {
 public:
  RecordingNode(Simulator& sim, SimNetwork& net, NodeId id, Duration per_message = 0)
      : Node(sim, net, id, NodeKind::Replica), per_message_(per_message) {}

  std::vector<Time> arrivals;
  using Node::charge;
  using Node::send;
  using Node::set_timer;

 protected:
  void on_message(NodeId, const Payload&) override { arrivals.push_back(now()); }
  Duration message_cost(const Payload&) const override { return per_message_; }

 private:
  Duration per_message_;
};

struct NetFixture {
  Simulator sim{7};
  NetworkConfig config;
  std::unique_ptr<SimNetwork> net;

  explicit NetFixture(NetworkConfig cfg = {}) : config(cfg) {
    net = std::make_unique<SimNetwork>(sim, config);
  }
};

TEST(Network, DeliversWithLatency) {
  NetworkConfig cfg;
  cfg.base_latency = 100 * kMicrosecond;
  cfg.jitter_mean = 0;
  cfg.ns_per_byte = 0;
  NetFixture f(cfg);
  RecordingNode a(f.sim, *f.net, NodeId{1});
  RecordingNode b(f.sim, *f.net, NodeId{2});
  a.send(NodeId{2}, std::make_shared<TestPayload>(10));
  f.sim.run_until(kSecond);
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0], 100 * kMicrosecond);
}

TEST(Network, SizeDependentTransmission) {
  NetworkConfig cfg;
  cfg.base_latency = 0;
  cfg.jitter_mean = 0;
  cfg.ns_per_byte = 10.0;
  cfg.header_bytes = 0;
  NetFixture f(cfg);
  RecordingNode a(f.sim, *f.net, NodeId{1});
  RecordingNode b(f.sim, *f.net, NodeId{2});
  a.send(NodeId{2}, std::make_shared<TestPayload>(1000));
  f.sim.run_until(kSecond);
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0], 10'000);
}

TEST(Network, CountsTrafficBySenderAndKind) {
  NetFixture f;
  RecordingNode replica(f.sim, *f.net, NodeId{1});
  RecordingNode client(f.sim, *f.net, NodeId{1'000'000});
  f.net->remove_node(NodeId{1'000'000});
  f.net->add_node(NodeId{1'000'000}, NodeKind::Client, &client);

  replica.send(NodeId{1'000'000}, std::make_shared<TestPayload>(100));
  client.send(NodeId{1}, std::make_shared<TestPayload>(50));
  f.sim.run_until(kSecond);

  EXPECT_EQ(f.net->client_traffic().messages, 2u);
  EXPECT_EQ(f.net->client_traffic().bytes, 100 + 50 + 2 * f.config.header_bytes);
  EXPECT_EQ(f.net->replica_traffic().messages, 0u);
}

TEST(Network, ReplicaToReplicaTraffic) {
  NetFixture f;
  RecordingNode a(f.sim, *f.net, NodeId{1});
  RecordingNode b(f.sim, *f.net, NodeId{2});
  a.send(NodeId{2}, std::make_shared<TestPayload>(10));
  f.sim.run_until(kSecond);
  EXPECT_EQ(f.net->replica_traffic().messages, 1u);
  EXPECT_EQ(f.net->client_traffic().messages, 0u);
}

TEST(Network, DropProbabilityOneDropsAll) {
  NetworkConfig cfg;
  cfg.drop_probability = 1.0;
  NetFixture f(cfg);
  RecordingNode a(f.sim, *f.net, NodeId{1});
  RecordingNode b(f.sim, *f.net, NodeId{2});
  for (int i = 0; i < 10; ++i) a.send(NodeId{2}, std::make_shared<TestPayload>(10));
  f.sim.run_until(kSecond);
  EXPECT_TRUE(b.arrivals.empty());
  EXPECT_EQ(f.net->dropped_messages(), 10u);
  // Traffic is still counted at the sender.
  EXPECT_EQ(f.net->replica_traffic().messages, 10u);
}

TEST(Network, PartitionBlocksBothDirections) {
  NetFixture f;
  RecordingNode a(f.sim, *f.net, NodeId{1});
  RecordingNode b(f.sim, *f.net, NodeId{2});
  f.net->partition({NodeId{1}}, {NodeId{2}});
  a.send(NodeId{2}, std::make_shared<TestPayload>(10));
  b.send(NodeId{1}, std::make_shared<TestPayload>(10));
  f.sim.run_until(kSecond);
  EXPECT_TRUE(a.arrivals.empty());
  EXPECT_TRUE(b.arrivals.empty());

  f.net->heal();
  a.send(NodeId{2}, std::make_shared<TestPayload>(10));
  f.sim.run_until(2 * kSecond);
  EXPECT_EQ(b.arrivals.size(), 1u);
}

TEST(Network, SendToUnknownNodeIsDropped) {
  NetFixture f;
  RecordingNode a(f.sim, *f.net, NodeId{1});
  a.send(NodeId{99}, std::make_shared<TestPayload>(10));
  f.sim.run_until(kSecond);
  EXPECT_EQ(f.net->dropped_messages(), 1u);
}

TEST(Node, CpuQueueingDelaysMessages) {
  NetworkConfig cfg;
  cfg.base_latency = 0;
  cfg.jitter_mean = 0;
  cfg.ns_per_byte = 0;
  NetFixture f(cfg);
  RecordingNode sender(f.sim, *f.net, NodeId{1});
  RecordingNode busy(f.sim, *f.net, NodeId{2}, /*per_message=*/100 * kMicrosecond);
  for (int i = 0; i < 3; ++i) sender.send(NodeId{2}, std::make_shared<TestPayload>(1));
  f.sim.run_until(kSecond);
  ASSERT_EQ(busy.arrivals.size(), 3u);
  // Handler runs after the message's own service time; messages queue.
  EXPECT_EQ(busy.arrivals[0], 100 * kMicrosecond);
  EXPECT_EQ(busy.arrivals[1], 200 * kMicrosecond);
  EXPECT_EQ(busy.arrivals[2], 300 * kMicrosecond);
}

TEST(Node, ChargeExtendsBusyPeriod) {
  NetworkConfig cfg;
  cfg.base_latency = 0;
  cfg.jitter_mean = 0;
  cfg.ns_per_byte = 0;
  NetFixture f(cfg);

  class ChargingNode final : public Node {
   public:
    using Node::Node;
    std::vector<Time> arrivals;

   protected:
    void on_message(NodeId, const Payload&) override {
      arrivals.push_back(now());
      charge(kMillisecond);  // execution work
    }
  };

  RecordingNode sender(f.sim, *f.net, NodeId{1});
  ChargingNode busy(f.sim, *f.net, NodeId{2}, NodeKind::Replica);
  for (int i = 0; i < 2; ++i) sender.send(NodeId{2}, std::make_shared<TestPayload>(1));
  f.sim.run_until(kSecond);
  ASSERT_EQ(busy.arrivals.size(), 2u);
  EXPECT_EQ(busy.arrivals[0], 0);
  EXPECT_EQ(busy.arrivals[1], kMillisecond);  // delayed by the charge
}

TEST(Node, CrashDropsQueuedAndFutureMessages) {
  NetFixture f;
  RecordingNode sender(f.sim, *f.net, NodeId{1});
  RecordingNode victim(f.sim, *f.net, NodeId{2}, /*per_message=*/kMillisecond);
  for (int i = 0; i < 5; ++i) sender.send(NodeId{2}, std::make_shared<TestPayload>(1));
  f.sim.schedule_after(1500 * kMicrosecond, [&] { victim.crash(); });
  f.sim.run_until(kSecond);
  // Only the first message completed processing before the crash.
  EXPECT_LE(victim.arrivals.size(), 1u);
  EXPECT_TRUE(victim.crashed());
}

TEST(Node, TimersFireAndCancel) {
  NetFixture f;
  RecordingNode node(f.sim, *f.net, NodeId{1});
  int fired = 0;
  node.set_timer(10 * kMillisecond, [&] { ++fired; });
  TimerId cancelled = node.set_timer(20 * kMillisecond, [&] { ++fired; });
  f.sim.cancel(cancelled.event);
  f.sim.run_until(kSecond);
  EXPECT_EQ(fired, 1);
}

TEST(Node, NoTimerAfterCrash) {
  NetFixture f;
  RecordingNode node(f.sim, *f.net, NodeId{1});
  int fired = 0;
  node.set_timer(10 * kMillisecond, [&] { ++fired; });
  node.crash();
  f.sim.run_until(kSecond);
  EXPECT_EQ(fired, 0);
}

TEST(Node, DestroyedNodeEventsAreSafe) {
  NetFixture f;
  RecordingNode sender(f.sim, *f.net, NodeId{1});
  {
    RecordingNode ephemeral(f.sim, *f.net, NodeId{2});
    ephemeral.set_timer(10 * kMillisecond, [] { FAIL() << "timer fired after destruction"; });
    sender.send(NodeId{2}, std::make_shared<TestPayload>(1));
  }
  // Node destroyed; its pending events must be no-ops.
  f.sim.run_until(kSecond);
}

TEST(Node, DeterministicReplay) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    NetworkConfig cfg;
    SimNetwork net(sim, cfg);
    RecordingNode a(sim, net, NodeId{1});
    RecordingNode b(sim, net, NodeId{2}, /*per_message=*/10 * kMicrosecond);
    for (int i = 0; i < 50; ++i) {
      sim.schedule_after(i * 100 * kMicrosecond,
                         [&] { a.send(NodeId{2}, std::make_shared<TestPayload>(10)); });
    }
    sim.run_until(kSecond);
    return b.arrivals;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // jitter differs across seeds
}

}  // namespace
}  // namespace idem::sim
