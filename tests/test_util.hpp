// Shared helpers for protocol tests.
#pragma once

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "app/kv_store.hpp"
#include "consensus/service_client.hpp"
#include "harness/cluster.hpp"

namespace idem::test {

inline std::vector<std::byte> put_cmd(std::string key, std::string value) {
  app::KvCommand cmd;
  cmd.op = app::KvOp::Put;
  cmd.key = std::move(key);
  cmd.value = std::move(value);
  return cmd.encode();
}

inline std::vector<std::byte> get_cmd(std::string key) {
  app::KvCommand cmd;
  cmd.op = app::KvOp::Get;
  cmd.key = std::move(key);
  return cmd.encode();
}

/// Invokes one operation and runs the simulation until it completes (or
/// `max_wait` of simulated time passes). Returns nullopt on stall.
inline std::optional<consensus::Outcome> invoke_and_wait(harness::Cluster& cluster,
                                                         std::size_t client_index,
                                                         std::vector<std::byte> command,
                                                         Duration max_wait = 30 * kSecond) {
  std::optional<consensus::Outcome> result;
  cluster.client(client_index)
      .invoke(std::move(command), [&](const consensus::Outcome& outcome) { result = outcome; });
  Time deadline = cluster.simulator().now() + max_wait;
  cluster.simulator().run_while(
      [&] { return !result.has_value() && cluster.simulator().now() < deadline; });
  return result;
}

/// Records the execution order (sqn, request id) at every replica so tests
/// can assert the fundamental SMR safety property: all replicas execute
/// the same requests in the same order.
class ExecutionRecorder {
 public:
  explicit ExecutionRecorder(harness::Cluster& cluster) {
    const std::size_t n = cluster.config().n;
    logs_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto hook = [this, i](SeqNum sqn, RequestId id) { logs_[i].push_back({sqn, id}); };
      if (auto* r = cluster.idem_replica(i)) {
        r->on_execute = hook;
      } else if (auto* p = cluster.paxos_replica(i)) {
        p->on_execute = hook;
      } else if (auto* s = cluster.smart_replica(i)) {
        s->on_execute = hook;
      } else if (auto* sp = cluster.smart_pr_replica(i)) {
        sp->on_execute = hook;
      }
    }
  }

  const std::vector<std::pair<SeqNum, RequestId>>& log(std::size_t replica) const {
    return logs_[replica];
  }

  /// Asserts pairwise prefix consistency of the execution logs: one log
  /// may be shorter (lagging replica), but where both have entries they
  /// must match exactly.
  void expect_consistent() const {
    for (std::size_t a = 0; a < logs_.size(); ++a) {
      for (std::size_t b = a + 1; b < logs_.size(); ++b) {
        std::size_t common = std::min(logs_[a].size(), logs_[b].size());
        for (std::size_t i = 0; i < common; ++i) {
          ASSERT_EQ(logs_[a][i].first, logs_[b][i].first)
              << "sqn divergence between replica " << a << " and " << b << " at position " << i;
          ASSERT_EQ(logs_[a][i].second, logs_[b][i].second)
              << "request divergence between replica " << a << " and " << b << " at position "
              << i;
        }
      }
    }
  }

  /// True if `id` was executed somewhere.
  bool executed_anywhere(RequestId id) const {
    for (const auto& log : logs_) {
      for (const auto& [sqn, rid] : log) {
        if (rid == id) return true;
      }
    }
    return false;
  }

  std::size_t count_executions(std::size_t replica, RequestId id) const {
    std::size_t count = 0;
    for (const auto& [sqn, rid] : logs_[replica]) {
      if (rid == id) ++count;
    }
    return count;
  }

 private:
  std::vector<std::vector<std::pair<SeqNum, RequestId>>> logs_;
};

/// A cluster configuration with fast timeouts suitable for unit tests.
inline harness::ClusterConfig test_cluster_config(harness::Protocol protocol,
                                                  std::size_t clients = 1,
                                                  std::uint64_t seed = 1) {
  harness::ClusterConfig config;
  config.protocol = protocol;
  config.clients = clients;
  config.seed = seed;
  config.preload = false;
  config.idem.viewchange_timeout = 300 * kMillisecond;
  config.paxos.viewchange_timeout = 300 * kMillisecond;
  config.paxos.heartbeat_interval = 100 * kMillisecond;
  config.idem_client.retry_interval = 200 * kMillisecond;
  config.paxos_client.retry_interval = 250 * kMillisecond;
  config.smart_client.retry_interval = 250 * kMillisecond;
  return config;
}

}  // namespace idem::test
