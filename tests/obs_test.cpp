// Observability tests: trace recorder ring semantics, metrics registry,
// the span sequence emitted by a scripted 3-replica IDEM run (happy path,
// REJECT path, leader-crash/view-change path), the exporters, and the
// no-perturbation guarantee (a traced run executes the exact same
// simulation trajectory as an untraced one).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/reject_reason.hpp"
#include "consensus/addresses.hpp"
#include "idem/acceptance.hpp"
#include "harness/driver.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace idem {
namespace {

using harness::Cluster;
using harness::Protocol;
using obs::TraceEvent;
using obs::TraceEventKind;

TEST(TraceRecorder, RecordsAndWrapsOldestFirst) {
  obs::TraceRecorder recorder(4);
  EXPECT_EQ(recorder.capacity(), 4u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    recorder.record(static_cast<Time>(i), TraceEventKind::Proposed, /*node=*/1, /*arg=*/i);
  }
  EXPECT_EQ(recorder.total_recorded(), 6u);
  EXPECT_EQ(recorder.overwritten(), 2u);
  EXPECT_EQ(recorder.size(), 4u);

  std::vector<TraceEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at, static_cast<Time>(i + 2)) << "snapshot must be oldest-first";
    EXPECT_EQ(events[i].kind, TraceEventKind::Proposed);
  }

  recorder.clear();
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(TraceRecorder, RequestIdAndKindNamesRoundTrip) {
  obs::TraceRecorder recorder(8);
  RequestId id{ClientId{7}, OpNum{42}};
  recorder.record(5, TraceEventKind::Executed, 2, id, /*arg=*/9);
  std::vector<TraceEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cid, 7u);
  EXPECT_EQ(events[0].onr, 42u);
  EXPECT_EQ(events[0].arg, 9u);
  EXPECT_EQ(events[0].node, 2u);
  EXPECT_STREQ(obs::to_string(events[0].kind), "executed");
  EXPECT_STREQ(obs::to_string(TraceEventKind::ViewChangeStart), "viewchange_start");
}

TEST(MetricsRegistry, CountersGaugesAndSampling) {
  obs::MetricsRegistry registry;
  std::uint64_t* accepted = registry.add_counter("accepted");
  double queue = 0;
  registry.add_gauge("queue", [&queue] { return queue; });
  registry.reserve_samples(4);

  *accepted += 3;
  queue = 1.5;
  registry.sample(100 * kMillisecond);
  *accepted += 2;
  queue = 7;
  registry.sample(200 * kMillisecond);

  ASSERT_EQ(registry.series_count(), 2u);
  ASSERT_EQ(registry.rows(), 2u);
  EXPECT_EQ(registry.series_name(0), "accepted");
  EXPECT_EQ(registry.row_time(0), 100 * kMillisecond);
  EXPECT_EQ(registry.value(0, 0), 3.0);
  EXPECT_EQ(registry.value(0, 1), 1.5);
  EXPECT_EQ(registry.value(1, 0), 5.0);
  EXPECT_EQ(registry.value(1, 1), 7.0);
  EXPECT_EQ(registry.current("accepted"), 5.0);
  EXPECT_EQ(registry.current("queue"), 7.0);

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  registry.write_jsonl(f);
  std::rewind(f);
  char buffer[4096];
  std::size_t got = std::fread(buffer, 1, sizeof buffer - 1, f);
  buffer[got] = '\0';
  std::fclose(f);
  std::string out(buffer);
  EXPECT_NE(out.find("{\"t_ms\":100,\"accepted\":3,\"queue\":1.5}\n"), std::string::npos);
  EXPECT_NE(out.find("{\"t_ms\":200,\"accepted\":5,\"queue\":7}\n"), std::string::npos);
}

// --- Span-sequence tests on a scripted 3-replica IDEM cluster ------------
// These need the protocol trace sites compiled in; with
// -DIDEM_TRACE_EVENTS=OFF the recorder stays empty by design.
#ifndef IDEM_TRACE_OFF

harness::ClusterConfig traced_config(std::size_t clients = 1, std::uint64_t seed = 1) {
  harness::ClusterConfig config = test::test_cluster_config(Protocol::Idem, clients, seed);
  config.obs.trace = true;
  return config;
}

std::vector<TraceEvent> events_of_kind(const std::vector<TraceEvent>& events,
                                       TraceEventKind kind) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events) {
    if (ev.kind == kind) out.push_back(ev);
  }
  return out;
}

TEST(ObsIntegration, HappyPathSpanSequence) {
  Cluster cluster(traced_config());
  const std::uint32_t leader = static_cast<std::uint32_t>(cluster.leader_index());
  const std::uint32_t client_node = consensus::client_address(ClientId{0}).value;

  auto outcome = test::invoke_and_wait(cluster, 0, test::put_cmd("k", "v"));
  ASSERT_TRUE(outcome.has_value());
  ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  cluster.simulator().run_for(kSecond);  // let followers execute too

  std::vector<TraceEvent> events = cluster.trace()->snapshot();
  ASSERT_FALSE(events.empty());
  // The very first transition is the client issuing the request.
  EXPECT_EQ(events.front().kind, TraceEventKind::RequestIssued);
  EXPECT_EQ(events.front().node, client_node);
  EXPECT_EQ(events.front().cid, 0u);
  EXPECT_EQ(events.front().onr, 1u);

  // All three replicas ran the acceptance test and accepted.
  auto verdicts = events_of_kind(events, TraceEventKind::AcceptVerdict);
  ASSERT_EQ(verdicts.size(), 3u);
  for (const TraceEvent& v : verdicts) EXPECT_EQ(v.arg, 1u);

  // The leader collected at least f+1 = 2 REQUIRE votes, then proposed.
  auto require_votes = events_of_kind(events, TraceEventKind::RequireNoted);
  ASSERT_GE(require_votes.size(), 2u);
  for (const TraceEvent& r : require_votes) EXPECT_EQ(r.node, leader);
  auto proposed = events_of_kind(events, TraceEventKind::Proposed);
  ASSERT_EQ(proposed.size(), 1u);
  EXPECT_EQ(proposed[0].node, leader);
  EXPECT_GE(proposed[0].at, require_votes[0].at);

  // Every replica adopted the binding, reached commit quorum, executed.
  EXPECT_EQ(events_of_kind(events, TraceEventKind::ProposeReceived).size(), 3u);
  auto quorums = events_of_kind(events, TraceEventKind::CommitQuorum);
  EXPECT_EQ(quorums.size(), 3u);
  auto executed = events_of_kind(events, TraceEventKind::Executed);
  ASSERT_EQ(executed.size(), 3u);
  for (const TraceEvent& ev : executed) {
    EXPECT_EQ(ev.cid, 0u);
    EXPECT_EQ(ev.onr, 1u);
  }

  // Exactly the leader replied, and the client saw a Reply outcome last.
  auto replies = events_of_kind(events, TraceEventKind::ReplySent);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].node, leader);
  auto outcomes = events_of_kind(events, TraceEventKind::RequestOutcome);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].node, client_node);
  EXPECT_EQ(outcomes[0].arg,
            static_cast<std::uint64_t>(consensus::Outcome::Kind::Reply));
  EXPECT_GE(outcomes[0].at, replies[0].at);

  // No rejection or view-change activity on the happy path.
  EXPECT_TRUE(events_of_kind(events, TraceEventKind::RejectSeen).empty());
  EXPECT_TRUE(events_of_kind(events, TraceEventKind::ViewChangeStart).empty());
}

TEST(ObsIntegration, RejectPathSpanSequence) {
  harness::ClusterConfig config = traced_config();
  config.reject_threshold = 0;  // TailDrop with r = 0 rejects everything
  config.acceptance_factory = [](std::size_t) { return std::make_unique<core::TailDrop>(); };
  Cluster cluster(config);

  auto outcome = test::invoke_and_wait(cluster, 0, test::put_cmd("k", "v"));
  ASSERT_TRUE(outcome.has_value());
  ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Rejected);

  std::vector<TraceEvent> events = cluster.trace()->snapshot();
  auto verdicts = events_of_kind(events, TraceEventKind::AcceptVerdict);
  ASSERT_EQ(verdicts.size(), 3u);
  for (const TraceEvent& v : verdicts) {
    EXPECT_FALSE(accept_verdict_accepted(v.arg));
    // Every reject verdict names a concrete reason (TailDrop sheds for load).
    EXPECT_EQ(accept_verdict_reason(v.arg), RejectReason::RtQueueFull);
  }

  // The client needed n-f = 2 REJECTs to abort.
  EXPECT_GE(events_of_kind(events, TraceEventKind::RejectSeen).size(), 2u);
  auto outcomes = events_of_kind(events, TraceEventKind::RequestOutcome);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].arg,
            static_cast<std::uint64_t>(consensus::Outcome::Kind::Rejected));

  // Nothing was ordered or executed.
  EXPECT_TRUE(events_of_kind(events, TraceEventKind::Proposed).empty());
  EXPECT_TRUE(events_of_kind(events, TraceEventKind::Executed).empty());
}

TEST(ObsIntegration, ViewChangeSpanSequence) {
  Cluster cluster(traced_config());
  ASSERT_EQ(test::invoke_and_wait(cluster, 0, test::put_cmd("k", "v"))->kind,
            consensus::Outcome::Kind::Reply);
  const std::uint32_t old_leader = static_cast<std::uint32_t>(cluster.leader_index());

  cluster.crash_replica(old_leader);
  cluster.simulator().run_for(3 * kSecond);

  auto outcome = test::invoke_and_wait(cluster, 0, test::put_cmd("after", "crash"),
                                       10 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);

  std::vector<TraceEvent> events = cluster.trace()->snapshot();
  auto starts = events_of_kind(events, TraceEventKind::ViewChangeStart);
  auto dones = events_of_kind(events, TraceEventKind::ViewChangeDone);
  ASSERT_GE(starts.size(), 1u);
  ASSERT_GE(dones.size(), 1u);
  for (const TraceEvent& ev : starts) EXPECT_NE(ev.node, old_leader);
  std::uint64_t max_view = 0;
  for (const TraceEvent& ev : dones) {
    EXPECT_NE(ev.node, old_leader);
    max_view = std::max(max_view, ev.arg);
  }
  EXPECT_GE(max_view, 1u) << "a higher view must have been installed";

  // The post-crash reply came from the new leader.
  auto replies = events_of_kind(events, TraceEventKind::ReplySent);
  ASSERT_FALSE(replies.empty());
  EXPECT_NE(replies.back().node, old_leader);
}

// --- No-perturbation and exporter tests ----------------------------------

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t replies = 0;
  std::uint64_t rejects = 0;
  std::uint64_t client_bytes = 0;
  std::uint64_t replica_bytes = 0;
};

RunResult run_load(bool traced, std::vector<TraceEvent>* trace_out = nullptr) {
  harness::ClusterConfig config = test::test_cluster_config(Protocol::Idem, /*clients=*/30,
                                                            /*seed=*/7);
  config.reject_threshold = 10;
  config.obs.trace = traced;

  harness::DriverConfig driver;
  driver.warmup = 100 * kMillisecond;
  driver.measure = 400 * kMillisecond;

  Cluster cluster(config);
  harness::ClosedLoopDriver loop(cluster, driver);
  harness::RunMetrics metrics = loop.run();

  if (trace_out != nullptr && cluster.trace() != nullptr) {
    *trace_out = cluster.trace()->snapshot();
  }
  RunResult r;
  r.events = cluster.simulator().events_executed();
  r.replies = metrics.replies;
  r.rejects = metrics.rejects;
  r.client_bytes = metrics.client_traffic.bytes;
  r.replica_bytes = metrics.replica_traffic.bytes;
  return r;
}

TEST(ObsIntegration, TracingDoesNotPerturbTheSimulation) {
  RunResult untraced = run_load(false);
  std::vector<TraceEvent> trace;
  RunResult traced = run_load(true, &trace);

  EXPECT_EQ(traced.events, untraced.events)
      << "tracing must not add, remove, or reorder simulation events";
  EXPECT_EQ(traced.replies, untraced.replies);
  EXPECT_EQ(traced.rejects, untraced.rejects);
  EXPECT_EQ(traced.client_bytes, untraced.client_bytes);
  EXPECT_EQ(traced.replica_bytes, untraced.replica_bytes);
  EXPECT_GT(trace.size(), 1000u) << "the run must have produced real trace volume";
}

TEST(ObsIntegration, ChromeTraceExportIsBalanced) {
  std::vector<TraceEvent> trace;
  run_load(true, &trace);
  ASSERT_FALSE(trace.empty());

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  obs::ChromeTraceStats stats = obs::write_chrome_trace(f, trace);
  EXPECT_GT(stats.spans, 100u);

  std::rewind(f);
  std::string out;
  char buffer[1 << 16];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, f)) > 0) out.append(buffer, got);
  std::fclose(f);

  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), '{');
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);

  auto count = [&out](const char* needle) {
    std::size_t n = 0;
    for (std::size_t pos = out.find(needle); pos != std::string::npos;
         pos = out.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  std::size_t begins = count("\"ph\":\"b\"");
  std::size_t ends = count("\"ph\":\"e\"");
  EXPECT_EQ(begins, ends) << "async begins and ends must balance";
  EXPECT_EQ(begins, stats.spans);
  EXPECT_GT(count("\"name\":\"request\""), 0u);
}

#endif  // IDEM_TRACE_OFF

TEST(ObsIntegration, MetricsTickSamplesTheCluster) {
  harness::ClusterConfig config = test::test_cluster_config(Protocol::Idem, /*clients=*/10);
  config.obs.metrics_interval = 50 * kMillisecond;
  Cluster cluster(config);

  harness::DriverConfig driver;
  driver.warmup = 0;
  driver.measure = 500 * kMillisecond;
  harness::ClosedLoopDriver loop(cluster, driver);
  loop.run();

  obs::MetricsRegistry* metrics = cluster.metrics();
  ASSERT_NE(metrics, nullptr);
  EXPECT_GE(metrics->rows(), 9u);  // one sample per 50 ms over 500 ms
  EXPECT_GT(metrics->current("r0.executed"), 0.0);
  EXPECT_GT(metrics->current("r0.tx_bytes"), 0.0);
  EXPECT_GT(metrics->current("net.client_bytes"), 0.0);
}

}  // namespace
}  // namespace idem
