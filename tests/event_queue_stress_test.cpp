// Regression + stress tests for the indexed event queue.
//
// The pre-PR1 queue (priority_queue + tombstone set) had a corruption bug:
// cancelling an already-fired or never-issued EventId inserted a permanent
// tombstone and wrongly decremented the live-event count, desynchronizing
// size()/empty() from reality. These tests pin the correct semantics and
// additionally check the heap against a naive reference model under
// randomized interleaved push/cancel/pop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"

namespace idem::sim {
namespace {

// ---------------------------------------------------------------------------
// Cancellation semantics regressions
// ---------------------------------------------------------------------------

TEST(EventQueueCancel, CancelAfterFireIsRejected) {
  EventQueue q;
  EventId id = q.push(10, [] {});
  q.push(20, [] {});
  q.pop().fn();  // fires the id=10 event

  // Old bug: this decremented live_ and left a tombstone; size() went to 0
  // with one event still pending.
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.next_time(), 20);
  EXPECT_EQ(q.pop().at, 20);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueCancel, DoubleCancelDoesNotCorruptSize) {
  EventQueue q;
  EventId id = q.push(10, [] {});
  q.push(20, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().at, 20);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueCancel, CancelOfInvalidIdIsRejected) {
  EventQueue q;
  q.push(10, [] {});
  EXPECT_FALSE(q.cancel(EventId{}));                 // default / null id
  EXPECT_FALSE(q.cancel(EventId{0xDEADBEEFull}));    // never issued
  EXPECT_FALSE(q.cancel(EventId{~0ull}));            // absurd slot index
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueCancel, StaleIdDoesNotCancelSlotReuser) {
  EventQueue q;
  EventId a = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(a));
  // b reuses a's storage slot; the stale id must not reach it.
  bool b_fired = false;
  EventId b = q.push(20, [&] { b_fired = true; });
  EXPECT_FALSE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(b_fired);
  // And now that b fired, its own id is stale too.
  EXPECT_FALSE(q.cancel(b));
}

TEST(EventQueueCancel, CancelReleasesCapturedState) {
  EventQueue q;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> weak = token;
  EventId id = q.push(10, [held = std::move(token)] { (void)held; });
  EXPECT_FALSE(weak.expired());
  EXPECT_TRUE(q.cancel(id));
  // In-place cancellation must drop the capture immediately, not at pop.
  EXPECT_TRUE(weak.expired());
}

// ---------------------------------------------------------------------------
// Randomized stress against a naive reference model
// ---------------------------------------------------------------------------

struct RefEvent {
  Time at = 0;
  std::uint64_t ticket = 0;  // insertion order, the FIFO tie-break
  EventId id;
  bool alive = false;
};

TEST(EventQueueStress, MatchesReferenceModel) {
  EventQueue q;
  Rng rng(2026, 0xEC);
  std::vector<RefEvent> model;  // all ever-issued events, alive or not
  std::uint64_t next_ticket = 1;
  std::uint64_t last_fired_ticket = 0;
  Time clock = 0;  // max popped time so far; pushes never go into the past

  auto model_alive = [&] {
    return std::count_if(model.begin(), model.end(), [](const RefEvent& e) { return e.alive; });
  };

  for (int op = 0; op < 30'000; ++op) {
    int kind = static_cast<int>(rng.uniform_int(0, 99));
    if (kind < 50) {
      // Push at a time >= the last popped time; duplicates are common so the
      // FIFO tie-break is exercised hard.
      Time at = clock + rng.uniform_int(0, 50);
      std::uint64_t ticket = next_ticket++;
      EventId id = q.push(at, [&last_fired_ticket, ticket] { last_fired_ticket = ticket; });
      model.push_back(RefEvent{at, ticket, id, true});
    } else if (kind < 75) {
      if (model.empty()) continue;
      // Cancel a random ever-issued id: may be pending, fired, or cancelled.
      RefEvent& target = model[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(model.size()) - 1))];
      bool expect = target.alive;
      EXPECT_EQ(q.cancel(target.id), expect) << "op " << op;
      target.alive = false;
    } else {
      if (q.empty()) continue;
      // Pop: must return the earliest (at, ticket) alive event.
      auto it = std::min_element(model.begin(), model.end(),
                                 [](const RefEvent& a, const RefEvent& b) {
                                   if (a.alive != b.alive) return a.alive;
                                   if (a.at != b.at) return a.at < b.at;
                                   return a.ticket < b.ticket;
                                 });
      ASSERT_TRUE(it != model.end() && it->alive);
      auto popped = q.pop();
      popped.fn();
      EXPECT_EQ(popped.at, it->at) << "op " << op;
      EXPECT_EQ(last_fired_ticket, it->ticket) << "op " << op;
      clock = popped.at;
      it->alive = false;
    }
    ASSERT_EQ(q.size(), static_cast<std::size_t>(model_alive())) << "op " << op;
    ASSERT_EQ(q.empty(), model_alive() == 0) << "op " << op;
  }

  // Drain: remaining events must come out in exact (at, ticket) order.
  std::vector<RefEvent> rest;
  for (const RefEvent& e : model) {
    if (e.alive) rest.push_back(e);
  }
  std::sort(rest.begin(), rest.end(), [](const RefEvent& a, const RefEvent& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.ticket < b.ticket;
  });
  for (const RefEvent& e : rest) {
    ASSERT_FALSE(q.empty());
    auto popped = q.pop();
    popped.fn();
    EXPECT_EQ(popped.at, e.at);
    EXPECT_EQ(last_fired_ticket, e.ticket);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueStress, HeavyChurnKeepsFifoOrder) {
  // Many equal timestamps + interleaved cancels: FIFO order must survive
  // arbitrary heap restructuring.
  EventQueue q;
  Rng rng(99, 3);
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(q.push(i / 10, [&fired, i] { fired.push_back(i); }));
  }
  std::size_t kept = 2000;
  for (int i = 0; i < 2000; ++i) {
    if (rng.bernoulli(0.3) && q.cancel(ids[static_cast<std::size_t>(i)])) --kept;
  }
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(fired.size(), kept);
  // Timestamps are i/10 and insertion order is i, so (time, FIFO) order
  // implies the surviving indices fire in strictly increasing order.
  for (std::size_t k = 1; k < fired.size(); ++k) {
    EXPECT_LT(fired[k - 1], fired[k]);
  }
}

}  // namespace
}  // namespace idem::sim
