// Tests for the BFT-SMaRt-analog baseline (CFT mode).
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace idem {
namespace {

using harness::Cluster;
using harness::Protocol;
using test::get_cmd;
using test::invoke_and_wait;
using test::put_cmd;
using test::test_cluster_config;

TEST(Smart, BasicPutGet) {
  Cluster cluster(test_cluster_config(Protocol::Smart));
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k", "v"))->kind,
            consensus::Outcome::Kind::Reply);
  auto get = invoke_and_wait(cluster, 0, get_cmd("k"));
  ASSERT_EQ(get->kind, consensus::Outcome::Kind::Reply);
  EXPECT_EQ(app::KvResult::decode(get->result).values.at(0), "v");
}

TEST(Smart, AllReplicasExecuteIdentically) {
  Cluster cluster(test_cluster_config(Protocol::Smart, /*clients=*/3));
  test::ExecutionRecorder recorder(cluster);
  for (int round = 0; round < 10; ++round) {
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(invoke_and_wait(cluster, c, put_cmd("key" + std::to_string(c), "v"))->kind,
                consensus::Outcome::Kind::Reply);
    }
  }
  cluster.simulator().run_for(kSecond);
  recorder.expect_consistent();
  EXPECT_EQ(recorder.log(0).size(), 30u);
  EXPECT_EQ(recorder.log(2).size(), 30u);
}

TEST(Smart, EveryReplicaReplies) {
  // CFT mode: all replicas answer; the client uses the first reply. The
  // duplicate replies are harmless but measurable as client traffic.
  Cluster cluster(test_cluster_config(Protocol::Smart));
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k", "v"))->kind,
            consensus::Outcome::Kind::Reply);
  cluster.simulator().run_for(kSecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.smart_replica(i)->stats().executed, 1u) << "replica " << i;
  }
}

TEST(Smart, ThreePhaseAgreement) {
  // One operation runs PROPOSE -> WRITE -> ACCEPT before execution.
  Cluster cluster(test_cluster_config(Protocol::Smart));
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k", "v"))->kind,
            consensus::Outcome::Kind::Reply);
  EXPECT_EQ(cluster.smart_replica(0)->stats().proposals_sent, 1u);
}

TEST(Smart, FollowerCrashStillLive) {
  Cluster cluster(test_cluster_config(Protocol::Smart));
  cluster.crash_replica(2);
  for (int i = 0; i < 5; ++i) {
    auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v" + std::to_string(i)));
    ASSERT_TRUE(outcome.has_value());
    ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  }
}

TEST(Smart, DuplicateSuppressionUnderLoss) {
  auto config = test_cluster_config(Protocol::Smart);
  config.network.drop_probability = 0.25;
  config.seed = 23;
  Cluster cluster(config);
  test::ExecutionRecorder recorder(cluster);
  for (int i = 0; i < 10; ++i) {
    auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 60 * kSecond);
    ASSERT_TRUE(outcome.has_value());
    ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  }
  cluster.network().set_drop_probability(0);
  cluster.simulator().run_for(5 * kSecond);
  recorder.expect_consistent();
  for (std::uint64_t onr = 1; onr <= 10; ++onr) {
    EXPECT_EQ(recorder.count_executions(0, RequestId{ClientId{0}, OpNum{onr}}), 1u);
  }
}

TEST(Smart, UnboundedBacklogGrowsUnderBurst) {
  // The defining difference from IDEM: no overload protection. A burst of
  // concurrent clients all gets queued, never rejected.
  Cluster cluster(test_cluster_config(Protocol::Smart, /*clients=*/50, /*seed=*/3));
  std::size_t replies = 0;
  for (std::size_t c = 0; c < 50; ++c) {
    cluster.client(c).invoke(put_cmd("k" + std::to_string(c), "v"),
                             [&](const consensus::Outcome& outcome) {
                               if (outcome.kind == consensus::Outcome::Kind::Reply) ++replies;
                             });
  }
  cluster.simulator().run_while(
      [&] { return replies < 50 && cluster.simulator().now() < 30 * kSecond; });
  EXPECT_EQ(replies, 50u);  // everything eventually served, nothing rejected
}

}  // namespace
}  // namespace idem
