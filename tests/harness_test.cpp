// Tests for the experiment harness itself: cluster builder, closed-loop
// driver semantics (warm-up exclusion, rejection backoff, fixed-count
// mode), custom acceptance tests end to end, and the table printer.
#include <gtest/gtest.h>

#include <cstring>

#include "harness/driver.hpp"
#include "harness/table.hpp"
#include "test_util.hpp"

namespace idem {
namespace {

using harness::Cluster;
using harness::ClosedLoopDriver;
using harness::DriverConfig;
using harness::Protocol;
using test::test_cluster_config;

TEST(Harness, ProtocolNames) {
  EXPECT_STREQ(harness::protocol_name(Protocol::Idem), "IDEM");
  EXPECT_STREQ(harness::protocol_name(Protocol::IdemNoPR), "IDEM_noPR");
  EXPECT_STREQ(harness::protocol_name(Protocol::PaxosLBR), "Paxos_LBR");
  EXPECT_STREQ(harness::protocol_name(Protocol::Smart), "BFT-SMaRt");
}

TEST(Harness, ClusterBuildsAllProtocols) {
  for (Protocol protocol : {Protocol::Idem, Protocol::IdemNoPR, Protocol::IdemNoAQM,
                            Protocol::Paxos, Protocol::PaxosLBR, Protocol::Smart}) {
    Cluster cluster(test_cluster_config(protocol, /*clients=*/2));
    EXPECT_EQ(cluster.num_clients(), 2u) << harness::protocol_name(protocol);
    EXPECT_EQ(cluster.leader_index(), 0u) << harness::protocol_name(protocol);
  }
}

TEST(Harness, TypedAccessorsMatchProtocol) {
  Cluster idem(test_cluster_config(Protocol::Idem));
  EXPECT_NE(idem.idem_replica(0), nullptr);
  EXPECT_EQ(idem.paxos_replica(0), nullptr);
  Cluster paxos(test_cluster_config(Protocol::Paxos));
  EXPECT_NE(paxos.paxos_replica(0), nullptr);
  EXPECT_EQ(paxos.smart_replica(0), nullptr);
}

TEST(Harness, PreloadPopulatesEveryReplica) {
  auto config = test_cluster_config(Protocol::Idem);
  config.preload = true;
  config.workload.record_count = 100;
  Cluster cluster(config);
  for (int i = 0; i < 3; ++i) {
    auto* store = dynamic_cast<app::KvStore*>(&cluster.idem_replica(i)->state_machine());
    ASSERT_NE(store, nullptr);
    EXPECT_GE(store->size(), 95u);
  }
  // All replicas start from byte-identical state.
  EXPECT_EQ(cluster.idem_replica(0)->state_machine().snapshot(),
            cluster.idem_replica(2)->state_machine().snapshot());
}

TEST(Harness, DriverMeasuresOnlyAfterWarmup) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/2);
  Cluster cluster(config);
  DriverConfig driver;
  driver.warmup = kSecond;
  driver.measure = kSecond;
  ClosedLoopDriver loop(cluster, driver);
  harness::RunMetrics metrics = loop.run();

  EXPECT_GT(metrics.replies, 100u);
  EXPECT_EQ(metrics.measured, kSecond);
  // The timeline covers the whole run including warm-up: it must contain
  // roughly twice the measured operations.
  EXPECT_GT(metrics.reply_series.total(), metrics.replies + metrics.replies / 2);
}

TEST(Harness, DriverStopsAfterFixedReplies) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/4);
  Cluster cluster(config);
  DriverConfig driver;
  driver.stop_after_replies = 500;
  ClosedLoopDriver loop(cluster, driver);
  harness::RunMetrics metrics = loop.run();
  EXPECT_GE(metrics.replies, 500u);
  EXPECT_LT(metrics.replies, 520u);  // stops promptly
  EXPECT_GT(metrics.client_traffic.bytes, 0u);
  EXPECT_GT(metrics.replica_traffic.bytes, 0u);
}

TEST(Harness, RejectedClientsBackOff) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/4);
  config.reject_threshold = 0;  // everything rejected
  Cluster cluster(config);
  DriverConfig driver;
  driver.warmup = 0;
  driver.measure = 2 * kSecond;
  driver.backoff_min = 50 * kMillisecond;
  driver.backoff_max = 100 * kMillisecond;
  ClosedLoopDriver loop(cluster, driver);
  harness::RunMetrics metrics = loop.run();

  EXPECT_EQ(metrics.replies, 0u);
  // With a ~75 ms mean cycle (reject latency + backoff), each client
  // completes roughly 2s / 75ms = 26 attempts.
  EXPECT_GT(metrics.rejects, 4 * 15u);
  EXPECT_LT(metrics.rejects, 4 * 45u);
}

TEST(Harness, CustomAcceptanceFactoryIsUsed) {
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/6);
  // Priority classes end to end: clients 0-2 are best effort (never
  // admitted above 0), clients 3-5 critical.
  config.acceptance_factory = [](std::size_t) {
    return std::make_unique<core::PriorityClasses>(
        [](ClientId cid) { return cid.value < 3 ? std::size_t{0} : std::size_t{1}; },
        std::vector<double>{0.0, 1.0});
  };
  Cluster cluster(config);

  for (std::size_t c = 0; c < 6; ++c) {
    auto outcome = test::invoke_and_wait(cluster, c, test::put_cmd("k", "v"), 5 * kSecond);
    ASSERT_TRUE(outcome.has_value()) << "client " << c;
    if (c < 3) {
      EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Rejected) << "client " << c;
    } else {
      EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply) << "client " << c;
    }
  }
}

TEST(Harness, CrashAtScheduledTimeTakesEffect) {
  auto config = test_cluster_config(Protocol::Idem);
  Cluster cluster(config);
  cluster.apply({sim::Fault::crash(100 * kMillisecond, 2)});
  cluster.simulator().run_until(50 * kMillisecond);
  EXPECT_EQ(cluster.leader_index(), 0u);
  cluster.simulator().run_until(200 * kMillisecond);
  auto outcome = test::invoke_and_wait(cluster, 0, test::put_cmd("k", "v"));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
}


TEST(Harness, IdenticalSeedsProduceIdenticalMetrics) {
  // The whole stack — workload, network, CPU jitter, protocol — is seeded:
  // two runs with the same seed must agree bit-for-bit; a different seed
  // must not.
  auto run = [](std::uint64_t seed) {
    auto config = test_cluster_config(Protocol::Idem, /*clients=*/8, seed);
    Cluster cluster(config);
    DriverConfig driver;
    driver.warmup = 200 * kMillisecond;
    driver.measure = kSecond;
    ClosedLoopDriver loop(cluster, driver);
    harness::RunMetrics metrics = loop.run();
    return std::tuple{metrics.replies, metrics.reply_latency.mean(),
                      metrics.client_traffic.bytes, metrics.replica_traffic.bytes};
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

// ---------------------------------------------------------------------------
// Table printer
// ---------------------------------------------------------------------------

TEST(TablePrinter, AlignsAndFormats) {
  harness::Table table({"name", "value"});
  table.add_row({"x", harness::Table::fmt(1.23456, 2)});
  table.add_row({"longer-name", harness::Table::fmt(std::uint64_t{42})});

  char buffer[512];
  std::FILE* stream = fmemopen(buffer, sizeof(buffer), "w");
  table.print(stream);
  std::fclose(stream);
  std::string out(buffer);
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TablePrinter, CsvOutput) {
  harness::Table table({"a", "b"});
  table.add_row({"1", "2"});
  char buffer[256];
  std::FILE* stream = fmemopen(buffer, sizeof(buffer), "w");
  table.print_csv(stream);
  std::fclose(stream);
  EXPECT_STREQ(buffer, "a,b\n1,2\n");
}

TEST(TablePrinter, FmtPrecision) {
  EXPECT_EQ(harness::Table::fmt(3.14159, 3), "3.142");
  EXPECT_EQ(harness::Table::fmt(3.14159, 0), "3");
  EXPECT_EQ(harness::Table::fmt(std::uint64_t{123456}), "123456");
}

}  // namespace
}  // namespace idem
