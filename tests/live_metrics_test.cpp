// Windowed live metrics: shard recording, cross-shard aggregation,
// snapshot windowing, exposition rendering, and (under TSan in ci.sh)
// concurrent recording while a scraper snapshots.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/reject_reason.hpp"
#include "core/telemetry.hpp"
#include "obs/live_metrics.hpp"

namespace idem::obs {
namespace {

TEST(LiveMetrics, CounterWindowsSinceLastSnapshot) {
  LiveMetrics hub;
  LiveShard* shard = hub.make_shard();
  auto id = shard->counter("accepts");
  shard->add(id, 5);

  LiveSnapshot first = hub.snapshot();
  ASSERT_EQ(first.counters.size(), 1u);
  EXPECT_EQ(first.counters[0].name, "accepts");
  EXPECT_EQ(first.counters[0].total, 5u);
  EXPECT_EQ(first.counters[0].window, 5u);
  EXPECT_GT(first.counters[0].rate, 0.0);

  shard->add(id, 3);
  LiveSnapshot second = hub.snapshot();
  EXPECT_EQ(second.counters[0].total, 8u);
  EXPECT_EQ(second.counters[0].window, 3u);

  // A quiet window: totals persist, the window is empty.
  LiveSnapshot third = hub.snapshot();
  EXPECT_EQ(third.counters[0].total, 8u);
  EXPECT_EQ(third.counters[0].window, 0u);
  EXPECT_EQ(third.counters[0].rate, 0.0);
}

TEST(LiveMetrics, SetMirrorsExternalTotalsIntoWindows) {
  // set() feeds an externally maintained monotonic total (TransportStats
  // mirroring); the window machinery deltas it like any counter.
  LiveMetrics hub;
  LiveShard* shard = hub.make_shard();
  auto id = shard->counter("tcp_messages_sent");
  shard->set(id, 100);
  EXPECT_EQ(hub.snapshot().counters[0].window, 100u);
  shard->set(id, 140);
  LiveSnapshot snap = hub.snapshot();
  EXPECT_EQ(snap.counters[0].total, 140u);
  EXPECT_EQ(snap.counters[0].window, 40u);
}

TEST(LiveMetrics, HistogramQuantilesCoverOnlyTheWindow) {
  LiveMetrics hub;
  LiveShard* shard = hub.make_shard();
  auto id = shard->histogram("reply_latency");
  for (int i = 0; i < 1000; ++i) shard->record(id, 1000);
  (void)hub.snapshot();

  // New window at a different magnitude: quantiles must not see the old
  // thousand samples at 1 us.
  for (int i = 0; i < 100; ++i) shard->record(id, 1'000'000);
  LiveSnapshot snap = hub.snapshot();
  ASSERT_EQ(snap.latencies.size(), 1u);
  EXPECT_EQ(snap.latencies[0].window_count, 100u);
  EXPECT_EQ(snap.latencies[0].total_count, 1100u);
  EXPECT_NEAR(static_cast<double>(snap.latencies[0].p50), 1e6, 1e6 * 0.04);
  EXPECT_NEAR(snap.latencies[0].mean_ns, 1e6, 1e6 * 0.04);
}

TEST(LiveMetrics, ShardsAggregateByName) {
  // Identical series names on different shards (one per replica) merge
  // into one cluster-wide series.
  LiveMetrics hub;
  LiveShard* a = hub.make_shard();
  LiveShard* b = hub.make_shard();
  auto ida = a->counter("accepts");
  auto idb = b->counter("accepts");
  a->add(ida, 2);
  b->add(idb, 3);
  LiveSnapshot snap = hub.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].total, 5u);
}

TEST(LiveMetrics, PrometheusRenderCarriesLabelsAndQuantiles) {
  LiveMetrics hub;
  LiveShard* shard = hub.make_shard();
  auto rejects = shard->counter("rejects[reason=rt-queue-full]");
  auto lat = shard->histogram("reply_latency");
  shard->add(rejects, 7);
  shard->record(lat, 1'000'000);

  std::string text = LiveMetrics::render_prometheus(hub.snapshot());
  EXPECT_NE(text.find("idem_window_seconds"), std::string::npos);
  EXPECT_NE(text.find("idem_rejects_total{reason=\"rt-queue-full\"} 7"), std::string::npos);
  EXPECT_NE(text.find("idem_rejects_rate{reason=\"rt-queue-full\"}"), std::string::npos);
  EXPECT_NE(text.find("idem_reply_latency_p50_seconds"), std::string::npos);
  EXPECT_NE(text.find("idem_reply_latency_p999_seconds"), std::string::npos);
}

TEST(LiveMetrics, JsonRenderCarriesWindowAndSeries) {
  LiveMetrics hub;
  LiveShard* shard = hub.make_shard();
  shard->add(shard->counter("replies"), 4);
  std::string json = LiveMetrics::render_json(hub.snapshot());
  EXPECT_NE(json.find("\"window_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"replies\": {\"total\": 4"), std::string::npos);
}

TEST(LiveMetrics, TelemetryDefaultConstructedIsInert) {
  // The simulator runs with exactly this instance; every call must no-op.
  core::LiveTelemetry telemetry;
  EXPECT_FALSE(telemetry.enabled());
  telemetry.count_accept();
  telemetry.count_reject(RejectReason::RtQueueFull);
  telemetry.record_reply_latency(1000);
}

TEST(LiveMetrics, TelemetryAttachRoutesIntoShard) {
  LiveMetrics hub;
  core::LiveTelemetry telemetry = core::LiveTelemetry::attach(hub.make_shard());
  ASSERT_TRUE(telemetry.enabled());
  telemetry.count_accept();
  telemetry.count_reject(RejectReason::RejectedCacheHit);
  telemetry.count_reject(RejectReason::RejectedCacheHit);
  telemetry.record_reply_latency(5000);

  LiveSnapshot snap = hub.snapshot();
  std::uint64_t accepts = 0, cache_hits = 0, replies = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "accepts") accepts = c.total;
    if (c.name == "rejects[reason=rejected-cache-hit]") cache_hits = c.total;
    if (c.name == "replies") replies = c.total;
  }
  EXPECT_EQ(accepts, 1u);
  EXPECT_EQ(cache_hits, 2u);
  EXPECT_EQ(replies, 1u);
  ASSERT_EQ(snap.latencies.size(), 1u);
  EXPECT_EQ(snap.latencies[0].window_count, 1u);
}

TEST(LiveMetrics, ConcurrentRecordingWhileScraping) {
  // The real deployment: one shard per replica thread recording at full
  // speed while an admin scraper snapshots. Run under TSan in ci.sh; the
  // final snapshot must account for every update exactly.
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;
  LiveMetrics hub;
  std::vector<LiveShard*> shards;
  for (int t = 0; t < kThreads; ++t) shards.push_back(hub.make_shard());

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)hub.snapshot();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([shard = shards[t]] {
      auto counter = shard->counter("accepts");
      auto hist = shard->histogram("reply_latency");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        shard->add(counter);
        shard->record(hist, static_cast<Duration>(1000 + i % 64));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true);
  scraper.join();

  LiveSnapshot snap = hub.snapshot();
  std::uint64_t accepts = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "accepts") accepts = c.total;
  }
  EXPECT_EQ(accepts, kThreads * kPerThread);
  ASSERT_EQ(snap.latencies.size(), 1u);
  EXPECT_EQ(snap.latencies[0].total_count, kThreads * kPerThread);
}

}  // namespace
}  // namespace idem::obs
