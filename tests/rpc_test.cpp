// Tests for the real-time runtime and TCP transport: event-loop timers,
// frame reassembly, socket round trips, and — the headline — the complete
// IDEM protocol running over real kernel TCP instead of the simulator.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <optional>

#include "app/kv_store.hpp"
#include "idem/acceptance.hpp"
#include "idem/client.hpp"
#include "idem/replica.hpp"
#include "rpc/event_loop.hpp"
#include "rpc/framing.hpp"
#include "rpc/tcp_transport.hpp"
#include "test_util.hpp"

namespace idem {
namespace {

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

TEST(EventLoopTest, TimersFireInOrder) {
  rpc::EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(20 * kMillisecond, [&] { order.push_back(2); });
  loop.schedule_after(5 * kMillisecond, [&] { order.push_back(1); });
  loop.schedule_after(40 * kMillisecond, [&] {
    order.push_back(3);
    loop.stop();
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, CancelPreventsTimer) {
  rpc::EventLoop loop;
  bool fired = false;
  auto id = loop.schedule_after(5 * kMillisecond, [&] { fired = true; });
  EXPECT_TRUE(loop.cancel(id));
  loop.run_for(20 * kMillisecond);
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, NowAdvancesWithWallClock) {
  rpc::EventLoop loop;
  Time before = loop.now();
  loop.run_for(10 * kMillisecond);
  EXPECT_GE(loop.now() - before, 9 * kMillisecond);
}

TEST(EventLoopTest, RngStreamsAreDeterministic) {
  rpc::EventLoop a(7), b(7);
  EXPECT_EQ(a.rng("x").next_u64(), b.rng("x").next_u64());
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(FramingTest, RoundTripSingleFrame) {
  auto payload = test::put_cmd("k", "v");
  auto frame = rpc::encode_frame(42, 9999, payload);
  rpc::FrameReader reader;
  int frames = 0;
  ASSERT_TRUE(reader.feed(frame, [&](std::uint32_t sender, std::uint32_t sender_port,
                                     std::span<const std::byte> body) {
    ++frames;
    EXPECT_EQ(sender, 42u);
    EXPECT_EQ(sender_port, 9999u);
    EXPECT_TRUE(std::equal(body.begin(), body.end(), payload.begin(), payload.end()));
  }));
  EXPECT_EQ(frames, 1);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FramingTest, ReassemblesSplitFrames) {
  auto payload = test::put_cmd("key", "value");
  auto frame = rpc::encode_frame(7, 0, payload);
  rpc::FrameReader reader;
  int frames = 0;
  // Feed one byte at a time.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    ASSERT_TRUE(reader.feed(
        std::span<const std::byte>(&frame[i], 1),
        [&](std::uint32_t, std::uint32_t, std::span<const std::byte>) { ++frames; }));
  }
  EXPECT_EQ(frames, 1);
}

TEST(FramingTest, MultipleFramesPerRead) {
  auto a = rpc::encode_frame(1, 0, test::put_cmd("a", "1"));
  auto b = rpc::encode_frame(2, 0, test::put_cmd("b", "2"));
  std::vector<std::byte> both = a;
  both.insert(both.end(), b.begin(), b.end());
  rpc::FrameReader reader;
  std::vector<std::uint32_t> senders;
  ASSERT_TRUE(reader.feed(
      both, [&](std::uint32_t sender, std::uint32_t, std::span<const std::byte>) {
        senders.push_back(sender);
      }));
  EXPECT_EQ(senders, (std::vector<std::uint32_t>{1, 2}));
}

TEST(FramingTest, RejectsOversizedFrame) {
  std::vector<std::byte> bogus(12);
  bogus[0] = std::byte{0xFF};
  bogus[1] = std::byte{0xFF};
  bogus[2] = std::byte{0xFF};
  bogus[3] = std::byte{0xFF};  // length = 4 GiB
  rpc::FrameReader reader;
  EXPECT_FALSE(reader.feed(
      bogus, [](std::uint32_t, std::uint32_t, std::span<const std::byte>) {}));
  EXPECT_EQ(reader.error(), rpc::FrameReader::Error::Oversized);
  // The stream is poisoned: further feeds fail without invoking the callback.
  int frames = 0;
  auto good = rpc::encode_frame(1, 0, test::put_cmd("k", "v"));
  EXPECT_FALSE(reader.feed(
      good, [&](std::uint32_t, std::uint32_t, std::span<const std::byte>) { ++frames; }));
  EXPECT_EQ(frames, 0);
}

TEST(FramingTest, ConfigurableBoundRejectsJustAboveLimit) {
  rpc::FrameReader reader(/*max_frame=*/16);
  std::vector<std::byte> payload(17, std::byte{0xAB});
  auto frame = rpc::encode_frame(3, 0, payload);
  EXPECT_FALSE(reader.feed(
      frame, [](std::uint32_t, std::uint32_t, std::span<const std::byte>) {}));
  EXPECT_EQ(reader.error(), rpc::FrameReader::Error::Oversized);

  // At the limit the frame passes.
  rpc::FrameReader ok_reader(/*max_frame=*/16);
  std::vector<std::byte> fitting(16, std::byte{0xCD});
  int frames = 0;
  EXPECT_TRUE(ok_reader.feed(
      rpc::encode_frame(3, 0, fitting),
      [&](std::uint32_t, std::uint32_t, std::span<const std::byte> body) {
        ++frames;
        EXPECT_EQ(body.size(), 16u);
      }));
  EXPECT_EQ(frames, 1);
}

TEST(FramingTest, ReportsTruncatedStream) {
  auto frame = rpc::encode_frame(5, 0, test::put_cmd("key", "value"));
  rpc::FrameReader reader;
  EXPECT_FALSE(reader.truncated());
  // Feed all but the last byte: a peer closing now left a frame in flight.
  ASSERT_TRUE(reader.feed(std::span<const std::byte>(frame.data(), frame.size() - 1),
                          [](std::uint32_t, std::uint32_t, std::span<const std::byte>) {}));
  EXPECT_TRUE(reader.truncated());
  // The final byte completes the frame; nothing is left buffered.
  ASSERT_TRUE(reader.feed(std::span<const std::byte>(frame.data() + frame.size() - 1, 1),
                          [](std::uint32_t, std::uint32_t, std::span<const std::byte>) {}));
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.error(), rpc::FrameReader::Error::None);
}

// ---------------------------------------------------------------------------
// Address parsing
// ---------------------------------------------------------------------------

TEST(ParseAddressTest, AcceptsHostPortForms) {
  auto full = rpc::parse_address("10.1.2.3:9100");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->host, "10.1.2.3");
  EXPECT_EQ(full->port, 9100);

  auto bare_port = rpc::parse_address("9100");
  ASSERT_TRUE(bare_port.has_value());
  EXPECT_EQ(bare_port->host, "127.0.0.1");
  EXPECT_EQ(bare_port->port, 9100);

  auto colon_port = rpc::parse_address(":9100");
  ASSERT_TRUE(colon_port.has_value());
  EXPECT_EQ(colon_port->host, "127.0.0.1");
  EXPECT_EQ(colon_port->port, 9100);
}

TEST(ParseAddressTest, RejectsMalformedInput) {
  EXPECT_FALSE(rpc::parse_address("").has_value());
  EXPECT_FALSE(rpc::parse_address("host:").has_value());
  EXPECT_FALSE(rpc::parse_address("127.0.0.1:0").has_value());
  EXPECT_FALSE(rpc::parse_address("127.0.0.1:70000").has_value());
  EXPECT_FALSE(rpc::parse_address("127.0.0.1:abc").has_value());
  EXPECT_FALSE(rpc::parse_address("not-an-ip:9100").has_value());
}

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

class CollectingEndpoint final : public sim::Endpoint {
 public:
  std::vector<std::pair<sim::NodeId, sim::PayloadPtr>> received;
  void deliver(sim::NodeId from, sim::PayloadPtr message) override {
    received.emplace_back(from, std::move(message));
  }
};

TEST(TcpTransportTest, DeliversBetweenLocalNodes) {
  rpc::EventLoop loop;
  rpc::TcpTransport transport(loop);
  CollectingEndpoint a, b;
  transport.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);
  transport.add_node(sim::NodeId{2}, sim::NodeKind::Replica, &b);
  EXPECT_GT(transport.port_of(sim::NodeId{1}), 0);

  auto request = std::make_shared<const msg::Request>(RequestId{ClientId{9}, OpNum{1}},
                                                      test::put_cmd("k", "v"));
  transport.send(sim::NodeId{1}, sim::NodeId{2}, request);
  loop.run_for(200 * kMillisecond);

  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, sim::NodeId{1});
  const auto* typed = dynamic_cast<const msg::Request*>(b.received[0].second.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->id.cid.value, 9u);
}

TEST(TcpTransportTest, ManyMessagesKeepOrderPerConnection) {
  rpc::EventLoop loop;
  rpc::TcpTransport transport(loop);
  CollectingEndpoint a, b;
  transport.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);
  transport.add_node(sim::NodeId{2}, sim::NodeKind::Replica, &b);

  for (std::uint64_t i = 1; i <= 500; ++i) {
    transport.send(sim::NodeId{1}, sim::NodeId{2},
                   std::make_shared<const msg::Reject>(RequestId{ClientId{1}, OpNum{i}}));
  }
  loop.run_for(300 * kMillisecond);

  ASSERT_EQ(b.received.size(), 500u);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const auto* typed = dynamic_cast<const msg::Reject*>(b.received[i].second.get());
    ASSERT_NE(typed, nullptr);
    EXPECT_EQ(typed->id.onr.value, i + 1);  // TCP preserves per-link order
  }
}

TEST(TcpTransportTest, SendToUnknownNodeIsDropped) {
  rpc::EventLoop loop;
  rpc::TcpTransport transport(loop);
  CollectingEndpoint a;
  transport.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);
  transport.send(sim::NodeId{1}, sim::NodeId{99},
                 std::make_shared<const msg::Reject>(RequestId{}));
  EXPECT_EQ(transport.stats().dropped, 1u);
}

TEST(TcpTransportTest, RemovedNodeStopsReceiving) {
  rpc::EventLoop loop;
  rpc::TcpTransport transport(loop);
  CollectingEndpoint a, b;
  transport.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);
  transport.add_node(sim::NodeId{2}, sim::NodeKind::Replica, &b);
  transport.remove_node(sim::NodeId{2});
  transport.send(sim::NodeId{1}, sim::NodeId{2},
                 std::make_shared<const msg::Reject>(RequestId{}));
  loop.run_for(100 * kMillisecond);
  EXPECT_TRUE(b.received.empty());
}

namespace {

/// Blocking loopback connection to a transport listener (simulating a
/// buggy or hostile peer speaking raw TCP).
int connect_raw(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

}  // namespace

TEST(TcpTransportTest, OversizedInboundFrameCountsDecodeError) {
  rpc::EventLoop loop;
  rpc::TcpTransportConfig config;
  config.max_frame_bytes = 1024;
  rpc::TcpTransport transport(loop, config);
  CollectingEndpoint a;
  transport.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);

  int fd = connect_raw(transport.port_of(sim::NodeId{1}));
  // Header claiming a 1 MiB payload on a 1 KiB-bounded transport.
  auto frame = rpc::encode_frame(9, 0, std::vector<std::byte>(8));
  frame[2] = std::byte{0x10};  // length: 0x100008
  ASSERT_EQ(::write(fd, frame.data(), frame.size()), static_cast<ssize_t>(frame.size()));
  loop.run_for(200 * kMillisecond);

  EXPECT_EQ(transport.stats().decode_errors, 1u);
  EXPECT_TRUE(a.received.empty());
  ::close(fd);
}

TEST(TcpTransportTest, TruncatedInboundStreamCountsDecodeError) {
  rpc::EventLoop loop;
  rpc::TcpTransport transport(loop);
  CollectingEndpoint a;
  transport.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);

  int fd = connect_raw(transport.port_of(sim::NodeId{1}));
  // A well-formed header followed by only part of the promised payload,
  // then a close: the frame in flight was truncated.
  auto frame = rpc::encode_frame(9, 0, std::vector<std::byte>(100));
  ASSERT_EQ(::write(fd, frame.data(), 40), 40);
  loop.run_for(100 * kMillisecond);
  ::close(fd);
  loop.run_for(200 * kMillisecond);

  EXPECT_EQ(transport.stats().decode_errors, 1u);
  EXPECT_TRUE(a.received.empty());
}

TEST(TcpTransportTest, CleanCloseBetweenFramesIsNotAnError) {
  rpc::EventLoop loop;
  rpc::TcpTransport transport(loop);
  CollectingEndpoint a;
  transport.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);

  int fd = connect_raw(transport.port_of(sim::NodeId{1}));
  auto frame = rpc::encode_frame(
      9, 0, msg::Reject{RequestId{ClientId{1}, OpNum{1}}}.encode());
  ASSERT_EQ(::write(fd, frame.data(), frame.size()), static_cast<ssize_t>(frame.size()));
  loop.run_for(100 * kMillisecond);
  ::close(fd);
  loop.run_for(100 * kMillisecond);

  EXPECT_EQ(transport.stats().decode_errors, 0u);
  EXPECT_EQ(a.received.size(), 1u);
}

// ---------------------------------------------------------------------------
// Accept-path hardening (connection storms)
// ---------------------------------------------------------------------------

namespace {

/// True when the peer has closed (or reset) our end of `fd`.
bool peer_closed(int fd) {
  char byte = 0;
  ssize_t n = ::recv(fd, &byte, 1, MSG_DONTWAIT);
  if (n == 0) return true;                                   // clean EOF
  return n < 0 && errno != EAGAIN && errno != EWOULDBLOCK;   // reset
}

}  // namespace

TEST(TcpTransportTest, ConnectionLimitShedsExcessConnections) {
  rpc::EventLoop loop;
  rpc::TcpTransportConfig config;
  config.max_inbound_connections = 2;
  rpc::TcpTransport transport(loop, config);
  CollectingEndpoint a;
  transport.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);

  const std::uint16_t port = transport.port_of(sim::NodeId{1});
  std::vector<int> fds;
  for (int i = 0; i < 4; ++i) fds.push_back(connect_raw(port));
  loop.run_for(200 * kMillisecond);

  // Two kept, two shed at accept; the shed peers observe a closed socket
  // (the early-rejection signal, RejectReason::ConnectionLimit in
  // telemetry) instead of queueing behind an overloaded server.
  EXPECT_EQ(transport.stats().connection_limit_sheds, 2u);
  EXPECT_EQ(transport.memory().inbound_connections, 2u);
  int closed = 0;
  for (int fd : fds) closed += peer_closed(fd) ? 1 : 0;
  EXPECT_EQ(closed, 2);

  // The connections under the cap still deliver frames.
  auto frame = rpc::encode_frame(
      9, 0, msg::Reject{RequestId{ClientId{1}, OpNum{1}}}.encode());
  for (int fd : fds) {
    if (!peer_closed(fd)) {
      ASSERT_EQ(::write(fd, frame.data(), frame.size()),
                static_cast<ssize_t>(frame.size()));
      break;
    }
  }
  loop.run_for(100 * kMillisecond);
  EXPECT_EQ(a.received.size(), 1u);
  for (int fd : fds) ::close(fd);
}

TEST(TcpTransportTest, IdleTimeoutEvictsSilentConnections) {
  rpc::EventLoop loop;
  rpc::TcpTransportConfig config;
  config.idle_timeout = 80 * kMillisecond;
  config.sweep_interval = 20 * kMillisecond;
  rpc::TcpTransport transport(loop, config);
  CollectingEndpoint a;
  transport.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);

  int silent = connect_raw(transport.port_of(sim::NodeId{1}));
  int chatty = connect_raw(transport.port_of(sim::NodeId{1}));
  auto frame = rpc::encode_frame(
      9, 0, msg::Reject{RequestId{ClientId{1}, OpNum{1}}}.encode());
  // The chatty peer completes a frame every ~40ms and must survive; the
  // silent one sends nothing and must be evicted.
  for (int round = 0; round < 6; ++round) {
    ASSERT_EQ(::write(chatty, frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    loop.run_for(40 * kMillisecond);
  }

  EXPECT_EQ(transport.stats().idle_evictions, 1u);
  EXPECT_TRUE(peer_closed(silent));
  EXPECT_FALSE(peer_closed(chatty));
  EXPECT_EQ(a.received.size(), 6u);
  ::close(silent);
  ::close(chatty);
}

TEST(TcpTransportTest, HalfOpenTimeoutEvictsPartialFrame) {
  rpc::EventLoop loop;
  rpc::TcpTransportConfig config;
  config.half_open_timeout = 80 * kMillisecond;
  config.sweep_interval = 20 * kMillisecond;
  rpc::TcpTransport transport(loop, config);
  CollectingEndpoint a;
  transport.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);

  // The loris peer starts a frame and never finishes it; the quiet peer
  // completed its frame and sits idle between frames — with only
  // half_open_timeout set (no idle_timeout) it must NOT be evicted.
  int loris = connect_raw(transport.port_of(sim::NodeId{1}));
  int quiet = connect_raw(transport.port_of(sim::NodeId{1}));
  auto frame = rpc::encode_frame(
      9, 0, msg::Reject{RequestId{ClientId{1}, OpNum{1}}}.encode());
  ASSERT_EQ(::write(quiet, frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  ASSERT_EQ(::write(loris, frame.data(), frame.size() / 2),
            static_cast<ssize_t>(frame.size() / 2));
  loop.run_for(300 * kMillisecond);

  EXPECT_EQ(transport.stats().half_open_evictions, 1u);
  EXPECT_EQ(transport.stats().idle_evictions, 0u);
  EXPECT_TRUE(peer_closed(loris));
  EXPECT_FALSE(peer_closed(quiet));
  EXPECT_EQ(a.received.size(), 1u);
  ::close(loris);
  ::close(quiet);
}

TEST(TcpTransportTest, AcceptBurstDrainsFloodWithoutStarvingTimers) {
  rpc::EventLoop loop;
  rpc::TcpTransportConfig config;
  config.accept_burst = 8;  // tiny burst: a 100-connection flood needs
                            // many deferred continuations to drain
  rpc::TcpTransport transport(loop, config);
  CollectingEndpoint a;
  transport.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);

  const std::uint16_t port = transport.port_of(sim::NodeId{1});
  std::vector<int> fds;
  for (int i = 0; i < 100; ++i) fds.push_back(connect_raw(port));
  bool timer_fired = false;
  loop.schedule_after(50 * kMillisecond, [&] { timer_fired = true; });
  loop.run_for(300 * kMillisecond);

  // Every connection in the flood gets accepted (in bursts of 8), and
  // the accept loop never monopolized an iteration: the timer fired.
  EXPECT_EQ(transport.stats().accepted_connections, 100u);
  EXPECT_EQ(transport.memory().inbound_connections, 100u);
  EXPECT_TRUE(timer_fired);
  for (int fd : fds) ::close(fd);
}

TEST(TcpTransportTest, RepliesRouteOverTheInboundConnection) {
  rpc::EventLoop loop;
  rpc::TcpTransport transport(loop);
  CollectingEndpoint a;
  transport.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);

  // A listener-less client (sender-port 0, like the storm driver) sends a
  // REQUEST; the transport must route the reply back over the same
  // inbound connection instead of dialing the advertised port.
  int fd = connect_raw(transport.port_of(sim::NodeId{1}));
  const std::uint32_t client_node = 1'000'777;
  auto request = rpc::encode_frame(
      client_node, 0,
      msg::Request{RequestId{ClientId{777}, OpNum{1}}, test::put_cmd("k", "v")}.encode());
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  loop.run_for(100 * kMillisecond);
  ASSERT_EQ(a.received.size(), 1u);

  transport.send(sim::NodeId{1}, sim::NodeId{client_node},
                 std::make_shared<const msg::Reject>(RequestId{ClientId{777}, OpNum{1}}));
  loop.run_for(100 * kMillisecond);

  rpc::FrameReader reader;
  char buf[4096];
  ssize_t n = ::recv(fd, buf, sizeof buf, MSG_DONTWAIT);
  ASSERT_GT(n, 0);
  std::size_t frames = 0;
  reader.feed(std::as_bytes(std::span(buf, static_cast<std::size_t>(n))),
              [&](std::uint32_t sender, std::uint32_t, std::span<const std::byte> payload) {
                ++frames;
                EXPECT_EQ(sender, 1u);
                auto message = msg::decode(payload);
                ASSERT_EQ(message->type(), msg::Type::Reject);
                EXPECT_EQ(static_cast<const msg::Reject&>(*message).id.cid.value, 777u);
              });
  EXPECT_EQ(frames, 1u);
  EXPECT_EQ(transport.stats().dropped, 0u);
  ::close(fd);
}

TEST(FramingTest, DecodeBufferIsReusedAcrossFrames) {
  rpc::FrameReader reader;
  const std::size_t warm = reader.capacity();
  ASSERT_GT(warm, 0u);

  std::size_t delivered = 0;
  auto count = [&](std::uint32_t, std::uint32_t, std::span<const std::byte>) { ++delivered; };

  // Steady state: frames smaller than the warm buffer, each split across
  // two reads to exercise the partial-frame path. The grow-only buffer
  // must never reallocate — zero allocation per frame is the contract the
  // transport's recv loop relies on.
  auto frame = rpc::encode_frame(1, 0, std::vector<std::byte>(1000));
  const std::size_t half = frame.size() / 2;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(reader.feed(std::span<const std::byte>(frame).first(half), count));
    ASSERT_TRUE(reader.feed(std::span<const std::byte>(frame).subspan(half), count));
    EXPECT_EQ(reader.capacity(), warm) << "iteration " << i;
  }
  EXPECT_EQ(delivered, 200u);
  EXPECT_EQ(reader.buffered(), 0u);

  // A frame larger than anything seen grows the buffer once; repeats of
  // the same size reuse the grown arena.
  auto big = rpc::encode_frame(1, 0, std::vector<std::byte>(3 * warm));
  ASSERT_TRUE(reader.feed(big, count));
  const std::size_t grown = reader.capacity();
  EXPECT_GT(grown, warm);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(reader.feed(big, count));
  EXPECT_EQ(reader.capacity(), grown);
  EXPECT_EQ(delivered, 206u);
}

// ---------------------------------------------------------------------------
// PendingWrites: the per-connection queue behind sendmsg coalescing
// ---------------------------------------------------------------------------

namespace {

std::vector<std::byte> frame_of(std::size_t size, int fill) {
  return std::vector<std::byte>(size, std::byte(fill));
}

}  // namespace

TEST(TcpTransportTest, PendingWritesResumeExactlyAfterPartialWrite) {
  rpc::PendingWrites out;
  out.push(frame_of(10, 1));
  out.push(frame_of(20, 2));
  out.push(frame_of(30, 3));
  EXPECT_EQ(out.total_bytes, 60u);

  iovec iov[8];
  ASSERT_EQ(out.fill_iovec(iov, 8), 3u);
  EXPECT_EQ(iov[0].iov_len, 10u);
  EXPECT_EQ(iov[1].iov_len, 20u);
  EXPECT_EQ(iov[2].iov_len, 30u);

  // sendmsg moved 25 bytes before EAGAIN: frame 0 fully, frame 1 to byte
  // 15. The next fill must start mid-frame, not re-send written bytes.
  out.consume(25);
  EXPECT_EQ(out.total_bytes, 35u);
  ASSERT_EQ(out.fill_iovec(iov, 8), 2u);
  EXPECT_EQ(iov[0].iov_base, out.frames.front().data() + 15);
  EXPECT_EQ(iov[0].iov_len, 5u);
  EXPECT_EQ(iov[1].iov_len, 30u);

  // Exactly finishing the partial frame resets the offset.
  out.consume(5);
  EXPECT_EQ(out.front_offset, 0u);
  ASSERT_EQ(out.fill_iovec(iov, 8), 1u);
  EXPECT_EQ(iov[0].iov_len, 30u);

  out.consume(30);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(out.total_bytes, 0u);
}

TEST(TcpTransportTest, PendingWritesCapIovecEntries) {
  rpc::PendingWrites out;
  for (int i = 0; i < 5; ++i) out.push(frame_of(8, i));
  iovec iov[5];
  EXPECT_EQ(out.fill_iovec(iov, 2), 2u);  // kMaxFlushIov-style cap
  EXPECT_EQ(out.fill_iovec(iov, 5), 5u);
}

TEST(TcpTransportTest, PendingWriteBoundShedsFramesAndCounts) {
  rpc::EventLoop loop;
  rpc::TcpTransportConfig config;
  config.max_pending_write_bytes = 600;
  rpc::TcpTransport transport(loop, config);
  CollectingEndpoint a;
  transport.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);

  // A listener that completes handshakes but is never served by an event
  // loop on our side: the loop never runs, so nothing is flushed and every
  // send stays in the connection's pending-write queue.
  int listener = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  transport.set_remote(sim::NodeId{2}, ntohs(addr.sin_port));

  const std::string value(200, 'x');
  for (std::uint64_t i = 1; i <= 10; ++i) {
    transport.send(sim::NodeId{1}, sim::NodeId{2},
                   std::make_shared<const msg::Request>(RequestId{ClientId{7}, OpNum{i}},
                                                        test::put_cmd("key", value)));
  }

  const rpc::TransportStats& stats = transport.stats();
  // ~220-byte frames against a 600-byte bound: the first few queue, the
  // rest are shed (fair loss) instead of buffering without bound.
  EXPECT_GT(stats.send_queue_overflows, 0u);
  EXPECT_EQ(stats.send_queue_overflows, stats.dropped);
  EXPECT_EQ(stats.messages_sent + stats.send_queue_overflows, 10u);
  EXPECT_LE(stats.bytes_sent, config.max_pending_write_bytes);
  ::close(listener);
}

// ---------------------------------------------------------------------------
// The full IDEM protocol over real TCP
// ---------------------------------------------------------------------------

TEST(RealtimeIdem, PutGetOverRealSockets) {
  rpc::EventLoop loop(3);
  rpc::TcpTransport transport(loop);

  core::IdemConfig config;
  config.n = 3;
  config.f = 1;
  config.reject_threshold = 50;
  // Keep simulated CPU costs off the real-time path.
  config.costs.per_message = 0;
  config.costs.ns_per_byte = 0;
  config.costs.send_per_message = 0;
  config.costs.send_ns_per_byte = 0;
  config.costs.jitter = 0;

  std::vector<std::unique_ptr<core::IdemReplica>> replicas;
  for (std::uint32_t i = 0; i < 3; ++i) {
    replicas.push_back(std::make_unique<core::IdemReplica>(
        loop, transport, ReplicaId{i}, config,
        std::make_unique<app::KvStore>(app::KvStore::Costs{0, 0, 0}),
        core::make_default_acceptance(config, 1)));
  }
  core::IdemClient client(loop, transport, ClientId{0}, {});

  std::optional<consensus::Outcome> put;
  client.invoke(test::put_cmd("greeting", "over-tcp"),
                [&](const consensus::Outcome& o) {
                  put = o;
                  loop.stop();
                });
  loop.run_for(5 * kSecond);
  ASSERT_TRUE(put.has_value());
  EXPECT_EQ(put->kind, consensus::Outcome::Kind::Reply);

  std::optional<consensus::Outcome> get;
  client.invoke(test::get_cmd("greeting"), [&](const consensus::Outcome& o) {
    get = o;
    loop.stop();
  });
  loop.run_for(5 * kSecond);
  ASSERT_TRUE(get.has_value());
  ASSERT_EQ(get->kind, consensus::Outcome::Kind::Reply);
  EXPECT_EQ(app::KvResult::decode(get->result).values.at(0), "over-tcp");

  // Every replica executed both operations.
  for (const auto& replica : replicas) {
    EXPECT_EQ(replica->last_executed(ClientId{0}), OpNum{2});
  }
}

TEST(RealtimeIdem, RejectionOverRealSockets) {
  rpc::EventLoop loop(4);
  rpc::TcpTransport transport(loop);

  core::IdemConfig config;
  config.n = 3;
  config.f = 1;
  config.reject_threshold = 0;  // reject everything
  config.costs = consensus::CostModel{0, 0, 0, 0, 0, 0, 1};

  std::vector<std::unique_ptr<core::IdemReplica>> replicas;
  for (std::uint32_t i = 0; i < 3; ++i) {
    replicas.push_back(std::make_unique<core::IdemReplica>(
        loop, transport, ReplicaId{i}, config,
        std::make_unique<app::KvStore>(app::KvStore::Costs{0, 0, 0}),
        core::make_default_acceptance(config, 1)));
  }
  core::IdemClient client(loop, transport, ClientId{0}, {});

  std::optional<consensus::Outcome> outcome;
  client.invoke(test::put_cmd("k", "v"), [&](const consensus::Outcome& o) {
    outcome = o;
    loop.stop();
  });
  loop.run_for(5 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Rejected);
  EXPECT_EQ(outcome->rejects_seen, 3u);
}

}  // namespace
}  // namespace idem
