// Tests for SMaRt+PR: collaborative proactive rejection composed with the
// SMaRt-analog agreement (the paper's Section 4.2 modularity claim).
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace idem {
namespace {

using harness::Cluster;
using harness::Protocol;
using test::get_cmd;
using test::invoke_and_wait;
using test::put_cmd;
using test::test_cluster_config;

TEST(SmartPR, BasicPutGet) {
  Cluster cluster(test_cluster_config(Protocol::SmartPR));
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k", "v"))->kind,
            consensus::Outcome::Kind::Reply);
  auto get = invoke_and_wait(cluster, 0, get_cmd("k"));
  ASSERT_EQ(get->kind, consensus::Outcome::Kind::Reply);
  EXPECT_EQ(app::KvResult::decode(get->result).values.at(0), "v");
}

TEST(SmartPR, AllReplicasExecuteIdentically) {
  Cluster cluster(test_cluster_config(Protocol::SmartPR, /*clients=*/3));
  test::ExecutionRecorder recorder(cluster);
  for (int round = 0; round < 10; ++round) {
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(invoke_and_wait(cluster, c, put_cmd("key" + std::to_string(c), "v"))->kind,
                consensus::Outcome::Kind::Reply);
    }
  }
  cluster.simulator().run_for(kSecond);
  recorder.expect_consistent();
  EXPECT_EQ(recorder.log(0).size(), 30u);
  EXPECT_EQ(recorder.log(2).size(), 30u);
}

TEST(SmartPR, RejectsWhenSaturated) {
  auto config = test_cluster_config(Protocol::SmartPR);
  config.reject_threshold = 0;
  Cluster cluster(config);
  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 5 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Rejected);
  EXPECT_TRUE(outcome->definitive_failure);
  EXPECT_EQ(outcome->rejects_seen, 3u);
}

TEST(SmartPR, SingleAcceptorStillExecutes) {
  // Liveness (Property 5.1) carries over to the composed protocol: only
  // replica 0 accepts, the others reject; forwarding completes agreement.
  auto config = test_cluster_config(Protocol::SmartPR);
  config.idem_client.optimistic_wait = 200 * kMillisecond;
  config.acceptance_factory = [](std::size_t replica) {
    struct RejectAll final : core::AcceptanceTest {
      core::AcceptanceVerdict evaluate(RequestId, std::span<const std::byte>,
                                       const core::AcceptanceContext&) override {
        return core::AcceptanceVerdict::no();
      }
      const char* name() const override { return "reject-all"; }
    };
    if (replica == 0) return std::unique_ptr<core::AcceptanceTest>(new core::NeverReject());
    return std::unique_ptr<core::AcceptanceTest>(new RejectAll());
  };
  Cluster cluster(config);

  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 10 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  cluster.simulator().run_for(kSecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.smart_pr_replica(i)->stats().executed, 1u) << "replica " << i;
  }
  EXPECT_GT(cluster.smart_pr_replica(0)->stats().forwards_sent, 0u);
}

TEST(SmartPR, FollowerCrashStillLive) {
  Cluster cluster(test_cluster_config(Protocol::SmartPR));
  cluster.crash_replica(2);
  for (int i = 0; i < 5; ++i) {
    auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v" + std::to_string(i)));
    ASSERT_TRUE(outcome.has_value());
    ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  }
}

TEST(SmartPR, ActiveSlotFreedAfterExecution) {
  Cluster cluster(test_cluster_config(Protocol::SmartPR));
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k", "v"))->kind,
              consensus::Outcome::Kind::Reply);
  }
  cluster.simulator().run_for(kSecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.smart_pr_replica(i)->active_requests(), 0u) << "replica " << i;
  }
}

TEST(SmartPR, ExactlyOnceUnderLoss) {
  auto config = test_cluster_config(Protocol::SmartPR, /*clients=*/2, /*seed=*/7);
  config.network.drop_probability = 0.15;
  Cluster cluster(config);
  test::ExecutionRecorder recorder(cluster);
  for (int i = 0; i < 8; ++i) {
    for (std::size_t c = 0; c < 2; ++c) {
      auto outcome = invoke_and_wait(cluster, c, put_cmd("k", "v"), 60 * kSecond);
      ASSERT_TRUE(outcome.has_value());
      ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
    }
  }
  cluster.network().set_drop_probability(0);
  cluster.simulator().run_for(5 * kSecond);
  recorder.expect_consistent();
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::uint64_t onr = 1; onr <= 8; ++onr) {
      EXPECT_LE(recorder.count_executions(0, RequestId{ClientId{c}, OpNum{onr}}), 1u);
    }
  }
}

}  // namespace
}  // namespace idem
