// HttpAdmin: the loopback GET responder behind --admin-port. Exercised
// with real sockets against a loop thread, the way curl/Prometheus hit it.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>

#include "rpc/event_loop.hpp"
#include "rpc/http_admin.hpp"

namespace idem::rpc {
namespace {

/// One blocking HTTP/1.0 exchange against 127.0.0.1:port; returns the full
/// response (head + body), empty on connect failure.
std::string http_get(std::uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return {};
  }
  (void)!::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

class HttpAdminTest : public ::testing::Test {
 protected:
  void start() {
    admin_ = std::make_unique<HttpAdmin>(loop_, 0);
    admin_->route("/metrics", "text/plain; version=0.0.4",
                  [this] { return metrics_body_; });
    admin_->route("/stats", "application/json", [] { return std::string("{\"ok\":true}"); });
    thread_ = std::thread([this] { loop_.run(); });
    // run() clears the stop flag on entry, so a stop() racing ahead of it
    // would be lost; wait until the loop is demonstrably spinning.
    std::atomic<bool> running{false};
    loop_.post([&] { running.store(true); });
    while (!running.load()) std::this_thread::yield();
  }

  void TearDown() override {
    loop_.stop();
    if (thread_.joinable()) thread_.join();
    admin_.reset();  // loop thread is gone: destruction here is safe
  }

  EventLoop loop_;
  std::unique_ptr<HttpAdmin> admin_;
  std::thread thread_;
  std::string metrics_body_ = "idem_window_seconds 1.0\n";
};

TEST_F(HttpAdminTest, ServesRegisteredRoute) {
  start();
  std::string response = http_get(admin_->port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find(metrics_body_), std::string::npos);
}

TEST_F(HttpAdminTest, ContentLengthMatchesBody) {
  start();
  std::string response = http_get(admin_->port(), "GET /stats HTTP/1.0\r\n\r\n");
  std::string expected = "Content-Length: " + std::to_string(std::strlen("{\"ok\":true}"));
  EXPECT_NE(response.find(expected), std::string::npos);
  EXPECT_NE(response.find("{\"ok\":true}"), std::string::npos);
}

TEST_F(HttpAdminTest, QueryStringIsStripped) {
  start();
  std::string response = http_get(admin_->port(), "GET /metrics?x=1 HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
}

TEST_F(HttpAdminTest, UnknownRouteIs404ListingRoutes) {
  start();
  std::string response = http_get(admin_->port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 404 Not Found"), std::string::npos);
  EXPECT_NE(response.find("/metrics"), std::string::npos);
  EXPECT_NE(response.find("/stats"), std::string::npos);
}

TEST_F(HttpAdminTest, NonGetIs405) {
  start();
  std::string response = http_get(admin_->port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 405"), std::string::npos);
}

TEST_F(HttpAdminTest, SplitRequestHeadIsReassembled) {
  // A scraper's head may arrive in several segments; the responder must
  // wait for the terminating blank line before routing.
  start();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(admin_->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char* part1 = "GET /met";
  const char* part2 = "rics HTTP/1.0\r\n\r\n";
  ASSERT_GT(::send(fd, part1, std::strlen(part1), MSG_NOSIGNAL), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_GT(::send(fd, part2, std::strlen(part2), MSG_NOSIGNAL), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
}

TEST_F(HttpAdminTest, ServedCounterAdvancesPerRoutedRequest) {
  start();
  EXPECT_EQ(admin_->requests_served(), 0u);
  (void)http_get(admin_->port(), "GET /metrics HTTP/1.0\r\n\r\n");
  (void)http_get(admin_->port(), "GET /nope HTTP/1.0\r\n\r\n");
  (void)http_get(admin_->port(), "GET /stats HTTP/1.0\r\n\r\n");
  // 404s do not count as served scrapes. The counter is written on the
  // loop thread; stop the loop before reading it.
  loop_.stop();
  thread_.join();
  EXPECT_EQ(admin_->requests_served(), 2u);
}

TEST_F(HttpAdminTest, EphemeralPortIsReported) {
  start();
  EXPECT_GT(admin_->port(), 0);
}

}  // namespace
}  // namespace idem::rpc
