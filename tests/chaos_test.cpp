// End-to-end tests for the chaos pipeline: seeded random schedules run
// deterministically, replay artifacts round-trip with identical history
// hashes, the generator respects its safety constraints, and the greedy
// shrinker reduces a fat schedule to a minimal failing core.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "check/chaos.hpp"

namespace idem {
namespace {

using check::ChaosConfig;
using check::ChaosResult;
using check::PlanGenConfig;

ChaosConfig small_config(const std::string& protocol, std::uint64_t seed) {
  ChaosConfig config;
  config.protocol = protocol;
  config.seed = seed;
  config.clients = 3;
  config.ops_per_client = 8;
  config.plan = check::random_plan(seed, PlanGenConfig{});
  return config;
}

TEST(Chaos, MiniSweepAcrossProtocolsPasses) {
  for (const char* protocol : {"idem", "paxos", "smart"}) {
    PlanGenConfig gen;
    gen.allow_leader_crash = std::string(protocol) != "smart";
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      ChaosConfig config = small_config(protocol, seed);
      config.plan = check::random_plan(seed, gen);
      ChaosResult result = check::run_chaos(config);
      EXPECT_TRUE(result.passed())
          << protocol << " seed " << seed << ": "
          << (result.check.linearizable ? result.exec_error : result.check.error);
      EXPECT_EQ(result.ok + result.rejected + result.timeouts + result.open,
                config.clients * config.ops_per_client);
    }
  }
}

// A client whose request executed just before the leader crash retransmits
// into the new view; the answer must come from the replicas' client-table
// reply cache, never from a second execution. The execution-log
// cross-invariants pin this: "executed twice" on any replica fails
// exec_ok, and linearizability fails if a duplicate execution mutated
// state. Inflight ops never time out here (op_timeout >> crash window),
// so every op spanning the crash completes through retransmission.
TEST(Chaos, RetransmitAfterLeaderCrashAnswersFromCache) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ChaosConfig config;
    config.protocol = "idem";
    config.seed = seed;
    config.clients = 4;
    config.ops_per_client = 20;
    config.reject_threshold = 50;  // no rejection noise in this scenario
    config.think_min = 10 * kMillisecond;
    config.think_max = 60 * kMillisecond;
    config.op_timeout = 10 * kSecond;
    config.plan.faults = {
        sim::Fault::crash(300 * kMillisecond, sim::Fault::kLeader),
        sim::Fault::recover(1500 * kMillisecond),
    };
    ChaosResult result = check::run_chaos(config);
    EXPECT_TRUE(result.exec_ok) << "seed " << seed << ": " << result.exec_error;
    EXPECT_TRUE(result.check.linearizable) << "seed " << seed << ": " << result.check.error;
    // The whole workload completes: nothing times out or stays open, so
    // the ops inflight across the crash really were answered on retry.
    EXPECT_EQ(result.ok, config.clients * config.ops_per_client) << "seed " << seed;
  }
}

TEST(Chaos, ReplayIsDeterministic) {
  ChaosConfig config = small_config("idem", 7);
  ChaosResult first = check::run_chaos(config);
  ChaosResult second = check::run_chaos(config);
  EXPECT_EQ(first.history_hash, second.history_hash);
  EXPECT_EQ(first.history, second.history);
}

TEST(Chaos, DifferentSeedsProduceDifferentHistories) {
  ChaosResult a = check::run_chaos(small_config("idem", 1));
  ChaosResult b = check::run_chaos(small_config("idem", 2));
  EXPECT_NE(a.history_hash, b.history_hash);
}

TEST(Chaos, ArtifactRoundTripReplays) {
  ChaosConfig config = small_config("idem", 11);
  ChaosResult result = check::run_chaos(config);
  json::Value artifact = check::make_artifact(config, result);
  // Through a serialize/parse cycle, like the corpus files on disk.
  json::Value reparsed = json::Value::parse(artifact.dump());
  check::ReplayResult replay = check::replay_artifact(reparsed);
  EXPECT_TRUE(replay.hash_matched) << replay.error;
  EXPECT_TRUE(replay.passed()) << replay.error;
  EXPECT_EQ(replay.result.ok, result.ok);
}

TEST(Chaos, ReplayDetectsStaleHashStamp) {
  ChaosConfig config = small_config("idem", 11);
  json::Value artifact = check::make_artifact(config, check::run_chaos(config));
  artifact.as_object()["expect"].as_object()["history_hash"] =
      json::Value(std::string("deadbeefdeadbeef"));
  check::ReplayResult replay = check::replay_artifact(artifact);
  EXPECT_FALSE(replay.hash_matched);
  EXPECT_FALSE(replay.passed());
}

TEST(Chaos, GeneratorRespectsConstraints) {
  PlanGenConfig gen;
  gen.max_faults = 6;
  gen.allow_leader_crash = false;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    sim::FaultPlan plan = check::random_plan(seed, gen);
    // Walk the schedule in time order, tracking crashed replicas.
    std::vector<const sim::Fault*> ordered;
    for (const auto& fault : plan.faults) ordered.push_back(&fault);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const sim::Fault* a, const sim::Fault* b) { return a->at < b->at; });
    std::set<std::int32_t> down;
    for (const sim::Fault* fault : ordered) {
      EXPECT_GE(fault->at, gen.start) << "seed " << seed;
      switch (fault->kind) {
        case sim::Fault::Kind::Crash:
          EXPECT_NE(fault->replica, 0) << "seed " << seed << ": leader crash disallowed";
          down.insert(fault->replica);
          EXPECT_LE(down.size(), gen.f) << "seed " << seed << ": > f concurrent crashes";
          break;
        case sim::Fault::Kind::Recover:
          down.erase(fault->replica);
          break;
        default:
          EXPECT_LE(fault->duration, gen.max_window) << "seed " << seed;
          break;
      }
    }
    EXPECT_TRUE(down.empty()) << "seed " << seed << ": crash never recovered";
    EXPECT_LE(plan.end_time(), gen.start + gen.spread + gen.max_window)
        << "seed " << seed;
  }
}

TEST(Chaos, SaturatedClusterDefinitivelyRejects) {
  // reject_threshold = 0: every replica rejects everything, so every op
  // collects all n rejections — definitive failure, client notified, and
  // trivially linearizable (nothing executed).
  ChaosConfig config;
  config.protocol = "idem";
  config.seed = 3;
  config.clients = 2;
  config.ops_per_client = 4;
  config.reject_threshold = 0;
  ChaosResult result = check::run_chaos(config);
  EXPECT_TRUE(result.passed()) << result.check.error << result.exec_error;
  EXPECT_EQ(result.rejected, config.clients * config.ops_per_client);
  EXPECT_EQ(result.ok, 0u);
  EXPECT_EQ(result.timeouts, 0u);
}

TEST(Chaos, ShrinkerReducesToMinimalCore) {
  // An 8-fault schedule where the synthetic "bug" needs exactly two
  // ingredients: the crash of replica 1 and a drop burst. Greedy shrinking
  // must strip the other six faults and keep halving the windows.
  sim::FaultPlan fat{
      sim::Fault::delay_spike(100 * kMillisecond, 5.0, 400 * kMillisecond),
      sim::Fault::crash(200 * kMillisecond, 1),
      sim::Fault::partition(300 * kMillisecond, {2}, {0}, 800 * kMillisecond),
      sim::Fault::drop_burst(400 * kMillisecond, 0.4, 1600 * kMillisecond),
      sim::Fault::partition_one_way(500 * kMillisecond, {0}, {2}, 200 * kMillisecond),
      sim::Fault::recover(900 * kMillisecond, 1),
      sim::Fault::delay_spike(kSecond, 3.0, 300 * kMillisecond),
      sim::Fault::heal(2 * kSecond),
  };
  auto still_fails = [](const sim::FaultPlan& plan) {
    bool crash1 = false, burst = false;
    for (const auto& fault : plan.faults) {
      if (fault.kind == sim::Fault::Kind::Crash && fault.replica == 1) crash1 = true;
      if (fault.kind == sim::Fault::Kind::DropBurst) burst = true;
    }
    return crash1 && burst;
  };
  sim::FaultPlan shrunk = check::shrink_plan(fat, still_fails);
  EXPECT_LE(shrunk.size(), 3u);
  EXPECT_TRUE(still_fails(shrunk));
  // Windows shrank too: the fat burst window halved its way below 40 ms.
  for (const auto& fault : shrunk.faults) {
    if (fault.kind == sim::Fault::Kind::DropBurst) {
      EXPECT_LT(fault.duration, 40 * kMillisecond);
    }
  }
}

TEST(Chaos, ConfigJsonRoundTrip) {
  ChaosConfig config = small_config("paxos", 42);
  config.app = "counter";
  config.read_fraction = 0.5;
  config.reject_threshold = 7;
  ChaosConfig round = ChaosConfig::from_json(json::Value::parse(config.to_json().dump()));
  EXPECT_EQ(round.protocol, config.protocol);
  EXPECT_EQ(round.app, config.app);
  EXPECT_EQ(round.seed, config.seed);
  EXPECT_EQ(round.clients, config.clients);
  EXPECT_EQ(round.ops_per_client, config.ops_per_client);
  EXPECT_EQ(round.keys, config.keys);
  EXPECT_EQ(round.reject_threshold, config.reject_threshold);
  EXPECT_DOUBLE_EQ(round.read_fraction, config.read_fraction);
  EXPECT_EQ(round.think_min, config.think_min);
  EXPECT_EQ(round.think_max, config.think_max);
  EXPECT_EQ(round.op_timeout, config.op_timeout);
  EXPECT_EQ(round.horizon, config.horizon);
  EXPECT_EQ(round.plan, config.plan);
}

// The deadline stack under fault injection: EDF scheduling + DeadlineAware
// admission, every op carrying a budget, random crash/partition schedules.
// The safety property: budget pressure only ever produces rejections —
// linearizability holds, no ghost or duplicate executions, and every op
// still terminates in one of the four outcomes.
TEST(Chaos, DeadlineStackSweepStaysLinearizable) {
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    ChaosConfig config = small_config("idem", seed);
    config.discipline = "edf";
    config.deadline_aware = true;
    config.request_deadline = 150 * kMillisecond;
    config.reject_threshold = 3;  // tight r: admission actually fires
    ChaosResult result = check::run_chaos(config);
    EXPECT_TRUE(result.passed())
        << "seed " << seed << ": "
        << (result.check.linearizable ? result.exec_error : result.check.error);
    EXPECT_EQ(result.ok + result.rejected + result.timeouts + result.open,
              config.clients * config.ops_per_client)
        << "seed " << seed;
  }
}

// Deadlines + EDF with the default FIFO knobs untouched must replay to the
// same history hash (the armed run is deterministic too), and the config
// round-trips through the artifact JSON so corpus replay can pin it.
TEST(Chaos, DeadlineConfigRoundTripsAndReplaysDeterministically) {
  ChaosConfig config = small_config("idem", 23);
  config.discipline = "edf";
  config.deadline_aware = true;
  config.request_deadline = 200 * kMillisecond;
  ChaosConfig round = ChaosConfig::from_json(json::Value::parse(config.to_json().dump()));
  EXPECT_EQ(round.discipline, "edf");
  EXPECT_TRUE(round.deadline_aware);
  EXPECT_EQ(round.request_deadline, config.request_deadline);
  ChaosResult first = check::run_chaos(config);
  ChaosResult second = check::run_chaos(round);
  EXPECT_EQ(first.history_hash, second.history_hash);
}

// Deadline-less configs must serialize exactly as before the deadline
// knobs existed: the corpus artifacts' config JSON is part of their
// replay contract.
TEST(Chaos, DeadlinelessConfigJsonIsUnchanged) {
  ChaosConfig config = small_config("idem", 5);
  const std::string dumped = config.to_json().dump();
  EXPECT_EQ(dumped.find("discipline"), std::string::npos);
  EXPECT_EQ(dumped.find("request_deadline_ns"), std::string::npos);
  EXPECT_EQ(dumped.find("deadline_aware"), std::string::npos);
}

TEST(Chaos, CounterAppSweepPasses) {
  for (std::uint64_t seed = 900; seed < 903; ++seed) {
    ChaosConfig config = small_config("idem", seed);
    config.app = "counter";
    ChaosResult result = check::run_chaos(config);
    EXPECT_TRUE(result.passed())
        << "seed " << seed << ": " << result.check.error << result.exec_error;
  }
}

}  // namespace
}  // namespace idem
