// Tests for the declarative fault-plan engine: JSON round-trips,
// windowed auto-revert, counted (composing) link blocks, one-way
// partitions, crash/recover, leader-relative targets, and the
// delay-spike / drop-burst knobs.
#include <gtest/gtest.h>

#include "sim/fault_plan.hpp"
#include "test_util.hpp"

namespace idem {
namespace {

using harness::Cluster;
using harness::Protocol;
using test::invoke_and_wait;
using test::put_cmd;
using test::test_cluster_config;

TEST(FaultPlan, JsonRoundTripAllKinds) {
  sim::FaultPlan plan{
      sim::Fault::crash(100 * kMillisecond, 1),
      sim::Fault::recover(600 * kMillisecond),
      sim::Fault::crash(800 * kMillisecond, sim::Fault::kLeader),
      sim::Fault::partition(kSecond, {2}, {0, 1, sim::fault_endpoint_client(0)},
                            400 * kMillisecond),
      sim::Fault::partition_one_way(2 * kSecond, {0}, {1, 2}),
      sim::Fault::heal(3 * kSecond),
      sim::Fault::delay_spike(4 * kSecond, 7.5, 250 * kMillisecond),
      sim::Fault::drop_burst(5 * kSecond, 0.33, 125 * kMillisecond),
  };
  sim::FaultPlan round = sim::FaultPlan::parse(plan.to_json_string());
  EXPECT_EQ(round, plan);
  // Canonical serialization: dump is stable across a round trip.
  EXPECT_EQ(round.to_json_string(), plan.to_json_string());
}

TEST(FaultPlan, EndTimeIncludesRevertWindows) {
  sim::FaultPlan plan{
      sim::Fault::crash(2 * kSecond, 0),
      sim::Fault::partition(kSecond, {0}, {1}, 1500 * kMillisecond),
  };
  EXPECT_EQ(plan.end_time(), 2500 * kMillisecond);
}

// The regression the one-way fault exists for: the leader can *send* but
// not *receive* (asymmetric link failure). Collaborative rejection must
// still notify the client — the followers reject on their own; no
// coordination through the leader is needed to say "not now".
TEST(FaultPlan, OneWayLeaderReceiveCutStillRejectsClient) {
  auto config = test_cluster_config(Protocol::Idem);
  config.reject_threshold = 0;  // saturated: every request is rejected
  Cluster cluster(config);
  // Everyone -> leader is cut; leader -> everyone still delivers.
  cluster.apply({sim::Fault::partition_one_way(
      0, {1, 2, sim::fault_endpoint_client(0)}, {0})});
  cluster.simulator().run_for(kMillisecond);  // let the fault arm

  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 5 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Rejected);
  // Only the two followers could answer: ambivalence, not definitive
  // failure (the leader might have accepted for all the client knows).
  EXPECT_EQ(outcome->rejects_seen, 2u);
  EXPECT_FALSE(outcome->definitive_failure);
}

TEST(FaultPlan, OneWayIsAsymmetric) {
  // The same endpoint sets with the direction flipped behave differently —
  // that's the whole point of PartitionOneWay vs Partition.
  const std::vector<std::uint32_t> client{sim::fault_endpoint_client(0)};
  const std::vector<std::uint32_t> replicas{0, 1, 2};

  // Request direction cut: nothing ever reaches the replicas.
  {
    Cluster cluster(test_cluster_config(Protocol::Idem));
    cluster.apply({sim::Fault::partition_one_way(0, client, replicas)});
    cluster.simulator().run_for(kMillisecond);
    std::optional<consensus::Outcome> outcome;
    cluster.client(0).invoke(put_cmd("k", "v"),
                             [&](const consensus::Outcome& o) { outcome = o; });
    cluster.simulator().run_for(kSecond);
    EXPECT_FALSE(outcome.has_value());
    EXPECT_EQ(cluster.idem_replica(0)->next_execute().value, 0u);
  }
  // Reply direction cut: the request executes, only the replies are lost.
  {
    Cluster cluster(test_cluster_config(Protocol::Idem));
    cluster.apply({sim::Fault::partition_one_way(0, replicas, client)});
    cluster.simulator().run_for(kMillisecond);
    std::optional<consensus::Outcome> outcome;
    cluster.client(0).invoke(put_cmd("k", "v"),
                             [&](const consensus::Outcome& o) { outcome = o; });
    cluster.simulator().run_for(kSecond);
    EXPECT_FALSE(outcome.has_value());
    EXPECT_GE(cluster.idem_replica(0)->next_execute().value, 1u);
  }
}

TEST(FaultPlan, WindowedPartitionAutoHeals) {
  // Same scenario as Partition.HealedReplicaCatchesUp, but the heal comes
  // from the window expiring rather than an explicit heal() call.
  auto config = test_cluster_config(Protocol::Idem);
  config.reject_threshold = 2;
  config.idem.checkpoint_interval = 8;
  // Long isolation must not trigger a view change on the cut replica; this
  // test is about the window mechanics, not failover.
  config.idem.viewchange_timeout = 30 * kSecond;
  Cluster cluster(config);
  cluster.apply({sim::Fault::partition(0, {2}, {0, 1}, 600 * kMillisecond)});
  cluster.simulator().run_for(kMillisecond);
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k" + std::to_string(i), "v"))->kind,
              consensus::Outcome::Kind::Reply);
  }
  // Still inside the window: the isolated replica made no progress.
  ASSERT_LT(cluster.simulator().now(), 600 * kMillisecond);
  EXPECT_EQ(cluster.idem_replica(2)->next_execute().value, 0u);
  // Past the window, it catches up without any explicit heal.
  cluster.simulator().run_until(700 * kMillisecond);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("post" + std::to_string(i), "v"))->kind,
              consensus::Outcome::Kind::Reply);
  }
  cluster.simulator().run_for(3 * kSecond);
  EXPECT_GT(cluster.idem_replica(2)->next_execute().value, 30u);
  EXPECT_EQ(cluster.idem_replica(2)->state_machine().snapshot(),
            cluster.idem_replica(0)->state_machine().snapshot());
}

TEST(FaultPlan, OverlappingWindowsCompose) {
  // Two overlapping windowed partitions cut the same links; the link must
  // stay cut until the *last* window reverts (counted blocks), not reopen
  // when the first one does.
  auto config = test_cluster_config(Protocol::Idem);
  config.reject_threshold = 2;
  config.idem.checkpoint_interval = 8;
  config.idem.viewchange_timeout = 30 * kSecond;
  Cluster cluster(config);
  cluster.apply({
      sim::Fault::partition(100 * kMillisecond, {2}, {0, 1}, 500 * kMillisecond),
      sim::Fault::partition(300 * kMillisecond, {2}, {0, 1}, 1600 * kMillisecond),
  });
  // Before the first window: replica 2 participates normally.
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k", "v"))->kind,
            consensus::Outcome::Kind::Reply);
  ASSERT_LT(cluster.simulator().now(), 100 * kMillisecond);
  cluster.simulator().run_for(50 * kMillisecond);
  const auto baseline = cluster.idem_replica(2)->next_execute().value;
  EXPECT_GE(baseline, 1u);
  // t in (600ms, 1.9s): first window over, second still active — enough
  // traffic for a checkpoint while replica 2 must stay frozen.
  cluster.simulator().run_until(800 * kMillisecond);
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k" + std::to_string(i), "v"))->kind,
              consensus::Outcome::Kind::Reply);
  }
  ASSERT_LT(cluster.simulator().now(), 1900 * kMillisecond);
  EXPECT_EQ(cluster.idem_replica(2)->next_execute().value, baseline)
      << "link reopened too early";
  // After 1.9s both windows are gone and replica 2 catches up.
  cluster.simulator().run_until(2 * kSecond);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("post" + std::to_string(i), "v"))->kind,
              consensus::Outcome::Kind::Reply);
  }
  cluster.simulator().run_for(3 * kSecond);
  EXPECT_GT(cluster.idem_replica(2)->next_execute().value, 30u);
}

TEST(FaultPlan, CrashAndRecoverCatchesUp) {
  Cluster cluster(test_cluster_config(Protocol::Idem));
  cluster.apply({
      sim::Fault::crash(100 * kMillisecond, 2),
      sim::Fault::recover(kSecond),  // defaults to the last crashed replica
  });
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k" + std::to_string(i), "v"))->kind,
              consensus::Outcome::Kind::Reply);
  }
  cluster.simulator().run_until(kSecond);
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("post", "v"))->kind,
            consensus::Outcome::Kind::Reply);
  cluster.simulator().run_for(5 * kSecond);
  EXPECT_GT(cluster.idem_replica(2)->next_execute().value, 0u);
  EXPECT_EQ(cluster.idem_replica(2)->state_machine().snapshot(),
            cluster.idem_replica(0)->state_machine().snapshot());
}

TEST(FaultPlan, LeaderSentinelResolvesAtFireTime) {
  Cluster cluster(test_cluster_config(Protocol::Paxos));
  cluster.apply({sim::Fault::crash(100 * kMillisecond, sim::Fault::kLeader)});
  cluster.simulator().run_until(200 * kMillisecond);  // crash has fired
  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 30 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  // Replica 0 (the leader at fire time) was the victim: leadership moved
  // to one of the survivors.
  EXPECT_TRUE(cluster.paxos_replica(1)->is_leader() ||
              cluster.paxos_replica(2)->is_leader());
}

TEST(FaultPlan, DelaySpikeSlowsAndReverts) {
  Cluster cluster(test_cluster_config(Protocol::Idem));
  auto baseline = invoke_and_wait(cluster, 0, put_cmd("k", "v"));
  ASSERT_EQ(baseline->kind, consensus::Outcome::Kind::Reply);

  Time start = cluster.simulator().now();
  cluster.apply({sim::Fault::delay_spike(start, 20.0, 2 * kSecond)});
  auto spiked = invoke_and_wait(cluster, 0, put_cmd("k", "v2"));
  ASSERT_EQ(spiked->kind, consensus::Outcome::Kind::Reply);
  EXPECT_GT(spiked->latency(), 3 * baseline->latency());

  cluster.simulator().run_until(start + 2 * kSecond + kMillisecond);
  EXPECT_DOUBLE_EQ(cluster.network().latency_factor(), 1.0);
  auto after = invoke_and_wait(cluster, 0, put_cmd("k", "v3"));
  EXPECT_LT(after->latency(), 2 * baseline->latency());
}

TEST(FaultPlan, DropBurstRevertsExactly) {
  auto config = test_cluster_config(Protocol::Idem);
  config.network.drop_probability = 0.05;
  Cluster cluster(config);
  // A burst that clamps at 1.0 must still revert to the 0.05 baseline,
  // not to 0.05 + 0.98 - 0.98's unclamped arithmetic.
  cluster.apply({sim::Fault::drop_burst(100 * kMillisecond, 0.98, 300 * kMillisecond)});
  cluster.simulator().run_until(200 * kMillisecond);
  EXPECT_DOUBLE_EQ(cluster.network().config().drop_probability, 1.0);
  cluster.simulator().run_until(500 * kMillisecond);
  EXPECT_NEAR(cluster.network().config().drop_probability, 0.05, 1e-9);
  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 30 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
}

}  // namespace
}  // namespace idem
