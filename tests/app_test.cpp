// Unit tests for the application substrate: KV store state machine,
// command codec, snapshots, and the YCSB workload generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "app/kv_store.hpp"
#include "app/ycsb.hpp"
#include "common/rng.hpp"

namespace idem::app {
namespace {

// ---------------------------------------------------------------------------
// KvCommand / KvResult codec
// ---------------------------------------------------------------------------

TEST(KvCodec, PutRoundTrip) {
  KvCommand cmd;
  cmd.op = KvOp::Put;
  cmd.key = "user42";
  cmd.value = std::string(100, 'v');
  KvCommand back = KvCommand::decode(cmd.encode());
  EXPECT_EQ(back.op, KvOp::Put);
  EXPECT_EQ(back.key, cmd.key);
  EXPECT_EQ(back.value, cmd.value);
}

TEST(KvCodec, GetRoundTrip) {
  KvCommand cmd;
  cmd.op = KvOp::Get;
  cmd.key = "k";
  KvCommand back = KvCommand::decode(cmd.encode());
  EXPECT_EQ(back.op, KvOp::Get);
  EXPECT_EQ(back.key, "k");
}

TEST(KvCodec, ScanRoundTrip) {
  KvCommand cmd;
  cmd.op = KvOp::Scan;
  cmd.key = "user1";
  cmd.scan_len = 55;
  KvCommand back = KvCommand::decode(cmd.encode());
  EXPECT_EQ(back.op, KvOp::Scan);
  EXPECT_EQ(back.scan_len, 55u);
}

TEST(KvCodec, ResultRoundTrip) {
  KvResult res;
  res.status = KvResult::Status::Ok;
  res.values = {"a", "bb", "ccc"};
  KvResult back = KvResult::decode(res.encode());
  EXPECT_TRUE(back.ok());
  EXPECT_EQ(back.values, res.values);
}

// ---------------------------------------------------------------------------
// KvStore
// ---------------------------------------------------------------------------

TEST(KvStore, PutThenGet) {
  KvStore store;
  KvCommand put;
  put.op = KvOp::Put;
  put.key = "k";
  put.value = "v";
  EXPECT_TRUE(KvResult::decode(store.execute(put.encode())).ok());

  KvCommand get;
  get.op = KvOp::Get;
  get.key = "k";
  KvResult res = KvResult::decode(store.execute(get.encode()));
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.values.size(), 1u);
  EXPECT_EQ(res.values[0], "v");
}

TEST(KvStore, GetMissingIsNotFound) {
  KvStore store;
  KvCommand get;
  get.op = KvOp::Get;
  get.key = "missing";
  KvResult res = KvResult::decode(store.execute(get.encode()));
  EXPECT_EQ(res.status, KvResult::Status::NotFound);
}

TEST(KvStore, DeleteRemoves) {
  KvStore store;
  store.put("k", "v");
  KvCommand del;
  del.op = KvOp::Delete;
  del.key = "k";
  EXPECT_TRUE(KvResult::decode(store.execute(del.encode())).ok());
  EXPECT_FALSE(store.get("k").has_value());
  // Deleting again reports NotFound.
  EXPECT_EQ(KvResult::decode(store.execute(del.encode())).status,
            KvResult::Status::NotFound);
}

TEST(KvStore, ScanReturnsOrderedRange) {
  KvStore store;
  store.put("a", "1");
  store.put("b", "2");
  store.put("c", "3");
  store.put("d", "4");
  KvCommand scan;
  scan.op = KvOp::Scan;
  scan.key = "b";
  scan.scan_len = 2;
  KvResult res = KvResult::decode(store.execute(scan.encode()));
  ASSERT_EQ(res.values.size(), 2u);
  EXPECT_EQ(res.values[0], "2");
  EXPECT_EQ(res.values[1], "3");
}

TEST(KvStore, MalformedCommandIsBadRequest) {
  KvStore store;
  std::vector<std::byte> garbage = {std::byte{2}};  // Put with no key
  KvResult res = KvResult::decode(store.execute(garbage));
  EXPECT_EQ(res.status, KvResult::Status::BadRequest);
}

TEST(KvStore, SnapshotRestoreRoundTrip) {
  KvStore store;
  for (int i = 0; i < 100; ++i) store.put("k" + std::to_string(i), "v" + std::to_string(i));
  auto snapshot = store.snapshot();

  KvStore other;
  other.put("stale", "data");
  other.restore(snapshot);
  EXPECT_EQ(other.size(), 100u);
  EXPECT_FALSE(other.get("stale").has_value());
  EXPECT_EQ(other.get("k42"), "v42");
}

TEST(KvStore, SnapshotIsCanonical) {
  // Same contents inserted in different orders serialize identically —
  // required for checkpoint comparison across replicas.
  KvStore a, b;
  a.put("x", "1");
  a.put("y", "2");
  b.put("y", "2");
  b.put("x", "1");
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(KvStore, ExecutionIsDeterministic) {
  KvStore a, b;
  Rng rng(9, 9);
  std::vector<std::vector<std::byte>> commands;
  YcsbConfig cfg;
  cfg.record_count = 50;
  YcsbWorkload workload(cfg, rng);
  for (int i = 0; i < 500; ++i) commands.push_back(workload.next_operation().encode());
  for (const auto& cmd : commands) {
    EXPECT_EQ(a.execute(cmd), b.execute(cmd));
  }
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(KvStore, ExecutionCostScalesWithValueSize) {
  KvStore store;
  KvCommand small;
  small.op = KvOp::Put;
  small.key = "k";
  small.value = "v";
  KvCommand big = small;
  big.value = std::string(10'000, 'v');
  EXPECT_GT(store.execution_cost(big.encode()), store.execution_cost(small.encode()));
}

// ---------------------------------------------------------------------------
// Zipfian generator
// ---------------------------------------------------------------------------

TEST(Zipfian, ValuesInRange) {
  Rng rng(1, 1);
  ZipfianGenerator zipf(1000);
  for (int i = 0; i < 10'000; ++i) {
    auto v = zipf.next(rng);
    EXPECT_LT(v, 1000u);
  }
}

TEST(Zipfian, SkewedTowardsLowRanks) {
  Rng rng(2, 2);
  ZipfianGenerator zipf(10'000, 0.99);
  std::map<std::uint64_t, int> counts;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.next(rng)];
  // Rank 0 should receive far more than uniform share (10/100k).
  EXPECT_GT(counts[0], n / 100);
  // Roughly monotone: rank 0 >> rank 100.
  EXPECT_GT(counts[0], counts[100] * 2);
}

TEST(Zipfian, SingleItemAlwaysZero) {
  Rng rng(3, 3);
  ZipfianGenerator zipf(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.next(rng), 0u);
}

// ---------------------------------------------------------------------------
// YCSB workload
// ---------------------------------------------------------------------------

TEST(Ycsb, UpdateHeavyMix) {
  Rng rng(4, 4);
  YcsbConfig cfg = YcsbConfig::update_heavy();
  cfg.record_count = 100;
  YcsbWorkload workload(cfg, rng);
  int reads = 0, updates = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    KvCommand cmd = workload.next_operation();
    if (cmd.op == KvOp::Get) ++reads;
    if (cmd.op == KvOp::Put) ++updates;
  }
  EXPECT_NEAR(static_cast<double>(reads) / n, 0.5, 0.03);
  EXPECT_NEAR(static_cast<double>(updates) / n, 0.5, 0.03);
}

TEST(Ycsb, LoadPhaseCoversAllRecords) {
  Rng rng(5, 5);
  YcsbConfig cfg;
  cfg.record_count = 200;
  YcsbWorkload workload(cfg, rng);
  auto load = workload.load_phase();
  EXPECT_EQ(load.size(), 200u);
  KvStore store;
  for (const auto& cmd : load) store.put(cmd.key, cmd.value);
  // Keys may collide only if the scrambling maps two records together;
  // allow a tiny number of collisions.
  EXPECT_GE(store.size(), 195u);
}

TEST(Ycsb, RunPhaseKeysExistAfterLoad) {
  Rng rng(6, 6);
  YcsbConfig cfg;
  cfg.record_count = 100;
  YcsbWorkload workload(cfg, rng);
  KvStore store;
  for (const auto& cmd : workload.load_phase()) store.put(cmd.key, cmd.value);
  for (int i = 0; i < 1000; ++i) {
    KvCommand cmd = workload.next_operation();
    if (cmd.op == KvOp::Get) {
      EXPECT_TRUE(store.get(cmd.key).has_value()) << cmd.key;
    }
  }
}

TEST(Ycsb, ValueSizeRespected) {
  Rng rng(7, 7);
  YcsbConfig cfg;
  cfg.value_size = 321;
  cfg.read_proportion = 0;
  cfg.update_proportion = 1;
  YcsbWorkload workload(cfg, rng);
  KvCommand cmd = workload.next_operation();
  EXPECT_EQ(cmd.value.size(), 321u);
}

TEST(Ycsb, UniformDistributionOption) {
  Rng rng(8, 8);
  YcsbConfig cfg;
  cfg.distribution = KeyDistribution::Uniform;
  cfg.record_count = 10;
  cfg.read_proportion = 1;
  cfg.update_proportion = 0;
  YcsbWorkload workload(cfg, rng);
  std::map<std::string, int> counts;
  for (int i = 0; i < 10'000; ++i) ++counts[workload.next_operation().key];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [key, count] : counts) {
    EXPECT_NEAR(count, 1000, 200) << key;
  }
}


TEST(Ycsb, WorkloadPresetMixes) {
  struct Case {
    YcsbConfig config;
    double read, update, insert, scan;
  };
  const Case cases[] = {
      {YcsbConfig::update_heavy(), 0.5, 0.5, 0.0, 0.0},
      {YcsbConfig::read_heavy(), 0.95, 0.05, 0.0, 0.0},
      {YcsbConfig::read_only(), 1.0, 0.0, 0.0, 0.0},
      {YcsbConfig::read_latest(), 0.95, 0.0, 0.05, 0.0},
      {YcsbConfig::scan_heavy(), 0.0, 0.0, 0.05, 0.95},
  };
  int case_index = 0;
  for (const Case& c : cases) {
    Rng rng(100 + case_index, 1);
    YcsbConfig config = c.config;
    config.record_count = 100;
    YcsbWorkload workload(config, rng);
    int reads = 0, writes = 0, scans = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
      KvCommand cmd = workload.next_operation();
      if (cmd.op == KvOp::Get) ++reads;
      if (cmd.op == KvOp::Put) ++writes;
      if (cmd.op == KvOp::Scan) ++scans;
    }
    EXPECT_NEAR(double(reads) / n, c.read, 0.03) << "case " << case_index;
    EXPECT_NEAR(double(writes) / n, c.update + c.insert, 0.03) << "case " << case_index;
    EXPECT_NEAR(double(scans) / n, c.scan, 0.03) << "case " << case_index;
    ++case_index;
  }
}

TEST(Ycsb, LatestDistributionSkewsToRecentRecords) {
  // With a fixed anchor (no inserts), "latest" concentrates reads on the
  // records with the highest indices; uniform would give each key ~0.1%.
  Rng rng(55, 2);
  YcsbConfig config = YcsbConfig::read_latest();
  config.insert_proportion = 0.0;
  config.read_proportion = 1.0;
  config.record_count = 1000;
  YcsbWorkload workload(config, rng);
  std::map<std::string, int> reads;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++reads[workload.next_operation().key];

  // The newest record (index 999) must be the single hottest key.
  int newest = reads[workload.key_for(999)];
  EXPECT_GT(double(newest) / n, 0.05);
  // Top-10 newest records take a large share (zipf over recency rank).
  int top10 = 0;
  for (int i = 0; i < 10; ++i) top10 += reads[workload.key_for(999 - i)];
  EXPECT_GT(double(top10) / n, 0.2);
}

}  // namespace
}  // namespace idem::app
