// Proves the kernel's allocation budget (DESIGN.md "Kernel performance
// model"): once warm, the steady-state dispatch path — EventQueue push ->
// pop -> fire, Simulator::step, Node timer set/cancel, and network message
// delivery with a reused payload — performs zero heap allocations.
//
// A counting global operator new/delete pair is armed only inside the
// measured regions; everything else (gtest bookkeeping, warm-up capacity
// growth) allocates freely.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocations{0};

void note_allocation() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void* operator new(std::size_t size) {
  note_allocation();
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  note_allocation();
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace idem::sim {
namespace {

struct CountingGuard {
  CountingGuard() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~CountingGuard() { g_counting.store(false, std::memory_order_relaxed); }
  std::uint64_t count() const { return g_allocations.load(std::memory_order_relaxed); }
};

// A capture the size of the kernel's real lambdas (liveness token + payload
// pointer + ids) — must be dispatched without touching the heap.
struct FatCapture {
  std::uint64_t a = 1, b = 2, c = 3, d = 4, e = 5;
};

TEST(AllocationBudget, EventQueueDispatchIsAllocationFree) {
  EventQueue q;
  std::uint64_t sink = 0;
  // Warm-up: grow heap/slot capacity past anything the loop needs.
  for (int i = 0; i < 4096; ++i) q.push(i, [&sink, cap = FatCapture{}] { sink += cap.a; });
  while (!q.empty()) q.pop().fn();

  CountingGuard guard;
  Time now = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 100; ++i) {
      q.push(now + i, [&sink, cap = FatCapture{}] { sink += cap.b; });
    }
    while (!q.empty()) {
      auto ev = q.pop();
      now = ev.at;
      ev.fn();
    }
  }
  EXPECT_EQ(guard.count(), 0u) << "push->pop->fire must not allocate once warm";
  EXPECT_GT(sink, 0u);
}

TEST(AllocationBudget, TimerSetCancelIsAllocationFree) {
  Simulator sim(3);
  NetworkConfig cfg;
  SimNetwork net(sim, cfg);

  class TimerNode final : public Node {
   public:
    TimerNode(Simulator& sim, SimNetwork& net) : Node(sim, net, NodeId{1}, NodeKind::Replica) {}
    using Node::cancel_timer;
    using Node::set_timer;

   protected:
    void on_message(NodeId, const Payload&) override {}
  };

  TimerNode node(sim, net);
  std::uint64_t fired = 0;
  // Warm-up: grow queue capacity.
  for (int i = 0; i < 2048; ++i) {
    TimerId t = node.set_timer(kMillisecond, [&fired] { ++fired; });
    node.cancel_timer(t);
  }

  CountingGuard guard;
  for (int i = 0; i < 10'000; ++i) {
    TimerId t = node.set_timer(kMillisecond, [&fired] { ++fired; });
    node.cancel_timer(t);
  }
  EXPECT_EQ(guard.count(), 0u) << "Node timer arm/cancel must not allocate";
}

TEST(AllocationBudget, SimulatorStepIsAllocationFree) {
  Simulator sim(4);
  std::uint64_t ticks = 0;
  // Self-rescheduling event: exactly the steady-state dispatch pattern.
  struct Ticker {
    Simulator* sim;
    std::uint64_t* ticks;
    void operator()() {
      ++*ticks;
      if (*ticks < 20'000) sim->schedule_after(10, Ticker{sim, ticks});
    }
  };
  sim.schedule_after(10, Ticker{&sim, &ticks});
  sim.run_until(15 * 10);  // warm up storage
  ASSERT_GT(ticks, 0u);

  CountingGuard guard;
  sim.run_until(kSecond);
  EXPECT_EQ(guard.count(), 0u) << "Simulator::step dispatch must not allocate";
  EXPECT_EQ(ticks, 20'000u);
}

TEST(AllocationBudget, NetworkDeliveryWithReusedPayloadIsAllocationFree) {
  Simulator sim(5);
  NetworkConfig cfg;
  cfg.jitter_mean = 0;  // exponential() draw allocates nothing either way
  SimNetwork net(sim, cfg);

  struct FixedPayload final : Payload {
    std::size_t wire_size() const override { return 64; }
    std::string kind() const override { return "FIXED"; }
  };

  class EchoNode final : public Node {
   public:
    EchoNode(Simulator& sim, SimNetwork& net, NodeId id)
        : Node(sim, net, id, NodeKind::Replica) {}
    using Node::send;
    std::uint64_t received = 0;

   protected:
    void on_message(NodeId, const Payload&) override { ++received; }
  };

  EchoNode a(sim, net, NodeId{1});
  EchoNode b(sim, net, NodeId{2});
  PayloadPtr payload = std::make_shared<FixedPayload>();

  // Warm-up: grow the service ring and event storage.
  for (int i = 0; i < 512; ++i) a.send(NodeId{2}, payload);
  sim.run_until(kSecond);
  ASSERT_EQ(b.received, 512u);

  CountingGuard guard;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 64; ++i) a.send(NodeId{2}, payload);
    sim.run_for(kSecond);
  }
  EXPECT_EQ(guard.count(), 0u)
      << "send -> schedule -> deliver -> service-queue -> handler must not allocate";
  EXPECT_EQ(b.received, 512u + 50u * 64u);
}

TEST(AllocationBudget, ObsHotPathIsAllocationFree) {
  // Trace recording, counter increments, and a reserved metrics sample are
  // the only obs operations that run inside the simulation; all memory is
  // acquired up front (ring at construction, samples via reserve_samples).
  obs::TraceRecorder recorder(1u << 12);
  obs::MetricsRegistry registry;
  std::uint64_t* accepted = registry.add_counter("accepted");
  double queue = 0;
  registry.add_gauge("queue", [&queue] { return queue; });
  registry.reserve_samples(512);

  CountingGuard guard;
  RequestId id{ClientId{3}, OpNum{1}};
  for (int round = 0; round < 512; ++round) {
    for (int i = 0; i < 16; ++i) {
      recorder.record(round * 16 + i, obs::TraceEventKind::AcceptVerdict, /*node=*/0, id,
                      /*arg=*/1);
      *accepted += 1;
      queue += 1;
    }
    registry.sample(static_cast<Time>(round) * kMillisecond);
  }
  EXPECT_EQ(guard.count(), 0u)
      << "trace record + counter bump + reserved sample must not allocate";
  EXPECT_GT(recorder.overwritten(), 0u);  // the ring wrapped and kept going
  EXPECT_EQ(registry.rows(), 512u);
  EXPECT_EQ(registry.current("accepted"), 8192.0);
}

}  // namespace
}  // namespace idem::sim
