// Unit tests for the protocol-agnostic replication core (src/core): the
// timeout helpers, the client session table, the batch pipeline, the
// rejected-bodies cache and the ordered log. The protocols layered on top
// are covered by their own suites; these tests pin the core semantics the
// layers rely on.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "consensus/messages.hpp"
#include "core/batch_pipeline.hpp"
#include "core/client_table.hpp"
#include "core/ordered_log.hpp"
#include "core/rejected_cache.hpp"
#include "core/timers.hpp"

namespace idem::core {
namespace {

RequestId rid(std::uint64_t cid, std::uint64_t onr) {
  return RequestId{ClientId{cid}, OpNum{onr}};
}

std::vector<std::byte> body(unsigned char tag) { return {std::byte{tag}}; }

// ---------------------------------------------------------------- timers

TEST(Timers, NextViewTargetEscalatesMonotonically) {
  // Not in a view change: demand the view after the current one.
  EXPECT_EQ(next_view_target(false, ViewId{3}, ViewId{0}).value, 4u);
  // Mid view change toward view 5: a stalled straggler escalates to 6, it
  // does not re-demand view_ + 1 (Section 4.5).
  EXPECT_EQ(next_view_target(true, ViewId{3}, ViewId{5}).value, 6u);
}

TEST(Timers, StallWatermarkNeedsTwoObservations) {
  StallWatermark mark;
  EXPECT_FALSE(mark.stalled_at(7));  // first sighting
  EXPECT_TRUE(mark.stalled_at(7));   // same head one interval later
  EXPECT_FALSE(mark.stalled_at(8));  // progress resets the verdict
  mark.reset();
  EXPECT_FALSE(mark.stalled_at(8));  // reset forgets the previous head
}

TEST(Timers, RetryGateRateLimits) {
  RetryGate gate;
  EXPECT_TRUE(gate.allow(0, 10));
  EXPECT_FALSE(gate.allow(5, 10));   // within the interval
  EXPECT_TRUE(gate.allow(10, 10));   // exactly one interval later
  gate.reset();
  EXPECT_TRUE(gate.allow(11, 10));   // reset re-arms immediately
}

// ----------------------------------------------------------- client table

TEST(ClientTable, ExecutedCoversOlderOperations) {
  ClientTable table;
  EXPECT_FALSE(table.executed(rid(1, 1)));
  table.record(rid(1, 3), std::make_shared<const msg::Reply>(rid(1, 3), body(0xA)));
  EXPECT_TRUE(table.executed(rid(1, 3)));
  EXPECT_TRUE(table.executed(rid(1, 2)));   // older op of the same client
  EXPECT_FALSE(table.executed(rid(1, 4)));  // newer op
  EXPECT_FALSE(table.executed(rid(2, 1)));  // other client
  EXPECT_EQ(table.last_executed(ClientId{1})->value, 3u);
  EXPECT_FALSE(table.last_executed(ClientId{2}).has_value());
}

TEST(ClientTable, CachedReplyMatchesExactIdOnly) {
  ClientTable table;
  table.record(rid(1, 3), std::make_shared<const msg::Reply>(rid(1, 3), body(0xA)));
  ASSERT_NE(table.cached_reply(rid(1, 3)), nullptr);
  // An older retransmission must not get the newer reply.
  EXPECT_EQ(table.cached_reply(rid(1, 2)), nullptr);
}

TEST(ClientTable, MergeExecutedKeepsNewerProgress) {
  ClientTable table;
  table.record(rid(1, 5), std::make_shared<const msg::Reply>(rid(1, 5), body(0xA)));
  table.merge_executed(ClientId{1}, OpNum{3});  // stale checkpoint: ignored
  EXPECT_EQ(table.last_executed(ClientId{1})->value, 5u);
  table.merge_executed(ClientId{1}, OpNum{9});  // newer checkpoint: adopted
  EXPECT_EQ(table.last_executed(ClientId{1})->value, 9u);
}

TEST(ClientTable, ClearRepliesKeepsSessions) {
  ClientTable table;
  table.record(rid(1, 3), std::make_shared<const msg::Reply>(rid(1, 3), body(0xA)));
  table.clear_replies();
  EXPECT_EQ(table.cached_reply(rid(1, 3)), nullptr);
  EXPECT_TRUE(table.executed(rid(1, 3)));  // duplicate suppression survives
}

// --------------------------------------------------------- batch pipeline

using IdPipeline = BatchPipeline<RequestId>;

TEST(BatchPipeline, DefaultsCutImmediately) {
  IdPipeline pipe;  // batch_min = 1, flush_delay = 0
  EXPECT_FALSE(pipe.ready(0));
  pipe.push(rid(1, 1), 0);
  EXPECT_TRUE(pipe.ready(0));
  std::vector<RequestId> batch;
  pipe.cut([&](RequestId& id) {
    batch.push_back(id);
    return IdPipeline::Verdict::Take;
  });
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_TRUE(pipe.empty());
}

TEST(BatchPipeline, BatchMinHoldsUntilSizeOrDelay) {
  IdPipeline pipe;
  pipe.configure({/*batch_max=*/32, /*batch_min=*/4, /*flush_delay=*/100});
  pipe.push(rid(1, 1), 10);
  pipe.push(rid(2, 1), 20);
  EXPECT_FALSE(pipe.ready(50));          // 2 of 4 queued, oldest waited 40
  EXPECT_EQ(pipe.delay_until_ready(50), 60);
  EXPECT_TRUE(pipe.ready(110));          // oldest waited the full delay
  pipe.push(rid(3, 1), 30);
  pipe.push(rid(4, 1), 30);
  EXPECT_TRUE(pipe.ready(31));           // batch_min reached: size cut
}

TEST(BatchPipeline, CutRespectsBatchMaxAndDrop) {
  IdPipeline pipe;
  pipe.configure({/*batch_max=*/2, /*batch_min=*/1, /*flush_delay=*/0});
  for (std::uint64_t i = 1; i <= 4; ++i) pipe.push(rid(i, 1), 0);
  std::vector<RequestId> batch;
  std::size_t taken = pipe.cut([&](RequestId& id) {
    if (id.cid.value == 1) return IdPipeline::Verdict::Drop;
    batch.push_back(id);
    return IdPipeline::Verdict::Take;
  });
  // Client 1 dropped (does not count toward batch_max), clients 2 and 3
  // taken, client 4 still queued.
  EXPECT_EQ(taken, 2u);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].cid.value, 2u);
  EXPECT_EQ(batch[1].cid.value, 3u);
  EXPECT_EQ(pipe.size(), 1u);
}

TEST(BatchPipeline, DeferRequeuesBehindTailInOrder) {
  IdPipeline pipe;
  pipe.configure({/*batch_max=*/8, /*batch_min=*/1, /*flush_delay=*/0});
  for (std::uint64_t i = 1; i <= 3; ++i) pipe.push(rid(i, 1), 0);
  // Defer clients 1 and 3 (no body yet), take client 2.
  pipe.cut([&](RequestId& id) {
    return id.cid.value == 2 ? IdPipeline::Verdict::Take : IdPipeline::Verdict::Defer;
  });
  ASSERT_EQ(pipe.size(), 2u);
  std::vector<RequestId> order;
  pipe.cut([&](RequestId& id) {
    order.push_back(id);
    return IdPipeline::Verdict::Take;
  });
  // Deferred items kept their original relative order.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].cid.value, 1u);
  EXPECT_EQ(order[1].cid.value, 3u);
}

// --------------------------------------------------------- rejected cache

TEST(RejectedCache, EvictsLeastRecentlyRejected) {
  RejectedCache cache(2);
  cache.insert(rid(1, 1), body(1));
  cache.insert(rid(2, 1), body(2));
  cache.insert(rid(3, 1), body(3));  // evicts client 1
  EXPECT_FALSE(cache.contains(rid(1, 1)));
  EXPECT_TRUE(cache.contains(rid(2, 1)));
  EXPECT_TRUE(cache.contains(rid(3, 1)));
  ASSERT_NE(cache.find(rid(2, 1)), nullptr);
  EXPECT_EQ((*cache.find(rid(2, 1)))[0], std::byte{2});
}

TEST(RejectedCache, RepeatRejectionRefreshesRecency) {
  // Section 4.5: a rejection is ambivalent while the client still retries,
  // so a repeat rejection must move the entry to the front instead of
  // letting it age out.
  RejectedCache cache(2);
  cache.insert(rid(1, 1), body(1));
  cache.insert(rid(2, 1), body(2));
  cache.insert(rid(1, 1), body(1));  // client 1 retried: refresh
  cache.insert(rid(3, 1), body(3));  // evicts client 2, not client 1
  EXPECT_TRUE(cache.contains(rid(1, 1)));
  EXPECT_FALSE(cache.contains(rid(2, 1)));
}

TEST(RejectedCache, EraseDropsPromotedEntries) {
  RejectedCache cache(4);
  cache.insert(rid(1, 1), body(1));
  cache.erase(rid(1, 1));
  EXPECT_FALSE(cache.contains(rid(1, 1)));
  EXPECT_EQ(cache.find(rid(1, 1)), nullptr);
  cache.erase(rid(9, 9));  // erasing an absent id is a no-op
}

TEST(RejectedCache, ZeroCapacityStoresNothing) {
  RejectedCache cache(0);
  cache.insert(rid(1, 1), body(1));
  EXPECT_EQ(cache.size(), 0u);
}

// ------------------------------------------------------------ ordered log

struct TestSlot : SlotBase {
  int payload = 0;
};

TEST(OrderedLog, CursorAndHead) {
  OrderedLog<TestSlot> log;
  EXPECT_EQ(log.head(), nullptr);
  log.at(0).payload = 10;
  log.at(2).payload = 30;
  ASSERT_NE(log.head(), nullptr);
  EXPECT_EQ(log.head()->payload, 10);
  log.advance_head();
  EXPECT_EQ(log.head(), nullptr);  // slot 1 never created
  EXPECT_EQ(log.next_exec(), 1u);
  log.set_next_exec(2);
  EXPECT_EQ(log.head()->payload, 30);
}

TEST(OrderedLog, SkipBoundSkipsBoundRuns) {
  OrderedLog<TestSlot> log;
  log.at(3).has_binding = true;
  log.at(4).has_binding = true;
  log.at(6).has_binding = true;
  EXPECT_EQ(log.skip_bound(2), 2u);  // free (slot absent)
  EXPECT_EQ(log.skip_bound(3), 5u);  // 3 and 4 bound, 5 free
  EXPECT_EQ(log.skip_bound(5), 5u);
  // skip_bound must not create slots as a side effect.
  EXPECT_FALSE(log.contains(5));
}

TEST(OrderedLog, HighWatermark) {
  OrderedLog<TestSlot> log;
  log.at(2).has_binding = true;
  log.at(5).has_binding = true;
  log.at(7);  // unbound slot: ignored by the predicate
  auto bound = [](const TestSlot& slot) { return slot.has_binding; };
  EXPECT_EQ(log.high_watermark(0, bound), 6u);
  EXPECT_EQ(log.high_watermark(9, bound), 9u);  // floor wins
}

TEST(OrderedLog, AdvanceLowReleasesExecutedSlots) {
  OrderedLog<TestSlot> log;
  log.at(0).executed = true;
  log.at(1);  // unexecuted slot below the new low: dropped silently
  log.at(2).executed = true;
  log.at(3).payload = 99;
  std::vector<int> released;
  log.advance_low(3, [&](TestSlot& slot) { released.push_back(slot.payload); });
  EXPECT_EQ(released.size(), 2u);
  EXPECT_EQ(log.low(), 3u);
  EXPECT_FALSE(log.contains(2));
  EXPECT_TRUE(log.contains(3));
}

TEST(OrderedLog, GcExecutedKeepsTrailingWindow) {
  OrderedLog<TestSlot> log;
  for (std::uint64_t sqn = 0; sqn < 10; ++sqn) log.at(sqn).executed = true;
  log.set_next_exec(10);
  log.gc_executed(/*window_size=*/2);  // keep [10 - 4, ...)
  EXPECT_FALSE(log.contains(5));
  EXPECT_TRUE(log.contains(6));
  EXPECT_TRUE(log.contains(9));
  // Below the 2x threshold nothing is collected.
  OrderedLog<TestSlot> young;
  young.at(0).executed = true;
  young.set_next_exec(1);
  young.gc_executed(/*window_size=*/2);
  EXPECT_TRUE(young.contains(0));
}

}  // namespace
}  // namespace idem::core
