// Unit tests for the pluggable service-queue disciplines (sim/discipline):
// the FIFO ring must behave exactly like the queue it replaced (arrival
// order, wraparound, crash-clear), and the EDF heap must order by due time
// with deterministic arrival-order tie-breaks.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/discipline.hpp"

namespace idem::sim {
namespace {

/// Minimal payload: the disciplines never look inside the message, they
/// only carry it, so a tagged stub is all the tests need.
struct TaggedPayload final : Payload {
  explicit TaggedPayload(int tag_) : tag(tag_) {}
  std::size_t wire_size() const override { return 8; }
  std::string kind() const override { return "tagged"; }
  int tag;
};

PayloadPtr tagged(int tag) { return std::make_shared<const TaggedPayload>(tag); }

int tag_of(const ServiceDiscipline::Item& item) {
  return static_cast<const TaggedPayload*>(item.message.get())->tag;
}

TEST(Discipline, FifoPopsInArrivalOrder) {
  FifoDiscipline q;
  for (int i = 0; i < 5; ++i) q.push(NodeId{0}, tagged(i), /*due=*/Time{100 - i});
  ASSERT_EQ(q.count(), 5u);
  // Due times are ignored by FIFO: arrival order rules.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(tag_of(q.pop()), i);
  EXPECT_EQ(q.count(), 0u);
}

TEST(Discipline, FifoRingSurvivesWraparoundAndGrowth) {
  FifoDiscipline q;
  int next_push = 0, next_pop = 0;
  // Interleaved churn forces head wraparound; the deep phase forces the
  // power-of-two ring to grow while partially full.
  for (int round = 0; round < 300; ++round) {
    q.push(NodeId{1}, tagged(next_push++), 0);
    q.push(NodeId{1}, tagged(next_push++), 0);
    EXPECT_EQ(tag_of(q.pop()), next_pop++);
  }
  while (q.count() > 0) EXPECT_EQ(tag_of(q.pop()), next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(Discipline, FifoPreservesSender) {
  FifoDiscipline q;
  q.push(NodeId{7}, tagged(0), 0);
  EXPECT_EQ(q.pop().from, NodeId{7});
}

TEST(Discipline, EdfPopsEarliestDueFirst) {
  EdfDiscipline q;
  q.push(NodeId{0}, tagged(0), Time{300});
  q.push(NodeId{0}, tagged(1), Time{100});
  q.push(NodeId{0}, tagged(2), Time{200});
  EXPECT_EQ(tag_of(q.pop()), 1);
  EXPECT_EQ(tag_of(q.pop()), 2);
  EXPECT_EQ(tag_of(q.pop()), 0);
}

TEST(Discipline, EdfTiesBreakByArrivalOrder) {
  // Equal due times pop in push order — the monotone sequence number makes
  // the heap a total order, keeping simulated trajectories deterministic.
  EdfDiscipline q;
  for (int i = 0; i < 16; ++i) q.push(NodeId{0}, tagged(i), Time{42});
  for (int i = 0; i < 16; ++i) EXPECT_EQ(tag_of(q.pop()), i);
}

TEST(Discipline, EdfDeadlinelessTrafficKeepsPriority) {
  // Agreement traffic is pushed with due = arrival; a client request due in
  // the future must not starve it.
  EdfDiscipline q;
  q.push(NodeId{0}, tagged(0), Time{1000 + 50});  // client request, 50ns budget
  q.push(NodeId{1}, tagged(1), Time{1001});       // peer message, due at arrival
  EXPECT_EQ(tag_of(q.pop()), 1);
  EXPECT_EQ(tag_of(q.pop()), 0);
}

TEST(Discipline, EdfInterleavedChurnStaysOrdered) {
  EdfDiscipline q;
  q.push(NodeId{0}, tagged(0), Time{500});
  q.push(NodeId{0}, tagged(1), Time{100});
  EXPECT_EQ(tag_of(q.pop()), 1);
  q.push(NodeId{0}, tagged(2), Time{400});
  q.push(NodeId{0}, tagged(3), Time{600});
  EXPECT_EQ(tag_of(q.pop()), 2);
  EXPECT_EQ(tag_of(q.pop()), 0);
  EXPECT_EQ(tag_of(q.pop()), 3);
  EXPECT_EQ(q.count(), 0u);
}

TEST(Discipline, ClearDropsEverything) {
  // Crash semantics: queued work is lost, and the queue is reusable after.
  for (DisciplineKind kind : {DisciplineKind::Fifo, DisciplineKind::Edf}) {
    auto q = make_discipline(kind);
    for (int i = 0; i < 8; ++i) q->push(NodeId{0}, tagged(i), Time{i});
    q->clear();
    EXPECT_EQ(q->count(), 0u) << q->name();
    q->push(NodeId{0}, tagged(99), Time{1});
    ASSERT_EQ(q->count(), 1u) << q->name();
    EXPECT_EQ(tag_of(q->pop()), 99) << q->name();
  }
}

TEST(Discipline, FactoryAndLabels) {
  EXPECT_STREQ(make_discipline(DisciplineKind::Fifo)->name(), "fifo");
  EXPECT_STREQ(make_discipline(DisciplineKind::Edf)->name(), "edf");
  EXPECT_TRUE(make_discipline(DisciplineKind::Fifo)->fifo());
  EXPECT_FALSE(make_discipline(DisciplineKind::Edf)->fifo());
  EXPECT_STREQ(to_label(DisciplineKind::Fifo), "fifo");
  EXPECT_STREQ(to_label(DisciplineKind::Edf), "edf");
}

}  // namespace
}  // namespace idem::sim
