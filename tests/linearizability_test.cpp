// Mutation tests for the linearizability checker: every classic history
// corruption — lost write, duplicated execution, executed-after-reject,
// stale read — must be flagged, while legal concurrency, maybe-executed
// timeouts and ambivalent rejections must pass.
#include <gtest/gtest.h>

#include "app/counter.hpp"
#include "app/kv_store.hpp"
#include "check/linearizability.hpp"

namespace idem {
namespace {

using check::CheckResult;
using check::CounterModel;
using check::History;
using check::KvModel;
using check::Op;

std::vector<std::byte> put(const std::string& key, const std::string& value) {
  app::KvCommand cmd;
  cmd.op = app::KvOp::Put;
  cmd.key = key;
  cmd.value = value;
  return cmd.encode();
}

std::vector<std::byte> get(const std::string& key) {
  app::KvCommand cmd;
  cmd.op = app::KvOp::Get;
  cmd.key = key;
  return cmd.encode();
}

std::vector<std::byte> del(const std::string& key) {
  app::KvCommand cmd;
  cmd.op = app::KvOp::Delete;
  cmd.key = key;
  return cmd.encode();
}

std::vector<std::byte> scan(const std::string& from, std::uint32_t len) {
  app::KvCommand cmd;
  cmd.op = app::KvOp::Scan;
  cmd.key = from;
  cmd.scan_len = len;
  return cmd.encode();
}

std::vector<std::byte> kv_ok() { return app::KvResult{}.encode(); }

std::vector<std::byte> kv_value(std::string value) {
  app::KvResult res;
  res.values.push_back(std::move(value));
  return res.encode();
}

std::vector<std::byte> kv_values(std::vector<std::string> values) {
  app::KvResult res;
  res.values = std::move(values);
  return res.encode();
}

std::vector<std::byte> kv_notfound() {
  app::KvResult res;
  res.status = app::KvResult::Status::NotFound;
  return res.encode();
}

Op op(std::uint64_t client, std::uint64_t seq, Time invoke, Time complete, Op::Result result,
      std::vector<std::byte> command, std::vector<std::byte> output = {},
      bool definitive = false) {
  Op o;
  o.client = client;
  o.seq = seq;
  o.invoke = invoke;
  o.complete = complete;
  o.result = result;
  o.command = std::move(command);
  o.output = std::move(output);
  o.definitive_reject = definitive;
  return o;
}

History make_history(std::vector<Op> ops) {
  History history;
  history.ops() = std::move(ops);
  return history;
}

// ---------------------------------------------------------------------------
// Accepting legal histories
// ---------------------------------------------------------------------------

TEST(Linearizability, SequentialPutGetAccepted) {
  History h = make_history({
      op(0, 1, 0, 10, Op::Result::Ok, put("k", "v1"), kv_ok()),
      op(0, 2, 20, 30, Op::Result::Ok, get("k"), kv_value("v1")),
  });
  CheckResult result = check::check_linearizable(h, KvModel{});
  EXPECT_TRUE(result.linearizable) << result.error;
}

TEST(Linearizability, ConcurrentPutsAcceptEitherOrder) {
  // Two overlapping puts; a later read may observe either one.
  for (const char* winner : {"v1", "v2"}) {
    History h = make_history({
        op(0, 1, 0, 100, Op::Result::Ok, put("k", "v1"), kv_ok()),
        op(1, 1, 50, 90, Op::Result::Ok, put("k", "v2"), kv_ok()),
        op(2, 1, 200, 210, Op::Result::Ok, get("k"), kv_value(winner)),
    });
    CheckResult result = check::check_linearizable(h, KvModel{});
    EXPECT_TRUE(result.linearizable) << winner << ": " << result.error;
  }
}

TEST(Linearizability, ReadDuringWriteSeesOldOrNew) {
  for (auto output : {kv_notfound(), kv_value("v1")}) {
    History h = make_history({
        op(0, 1, 0, 100, Op::Result::Ok, put("k", "v1"), kv_ok()),
        op(1, 1, 10, 90, Op::Result::Ok, get("k"), output),
    });
    EXPECT_TRUE(check::check_linearizable(h, KvModel{}).linearizable);
  }
}

TEST(Linearizability, DeleteRoundTripAccepted) {
  History h = make_history({
      op(0, 1, 0, 10, Op::Result::Ok, put("k", "v"), kv_ok()),
      op(0, 2, 20, 30, Op::Result::Ok, del("k"), kv_ok()),
      op(0, 3, 40, 50, Op::Result::Ok, get("k"), kv_notfound()),
      op(0, 4, 60, 70, Op::Result::Ok, del("k"), kv_notfound()),
  });
  CheckResult result = check::check_linearizable(h, KvModel{});
  EXPECT_TRUE(result.linearizable) << result.error;
}

TEST(Linearizability, PartitionsPerKey) {
  History h = make_history({
      op(0, 1, 0, 10, Op::Result::Ok, put("a", "1"), kv_ok()),
      op(1, 1, 0, 10, Op::Result::Ok, put("b", "2"), kv_ok()),
      op(0, 2, 20, 30, Op::Result::Ok, get("a"), kv_value("1")),
      op(1, 2, 20, 30, Op::Result::Ok, get("b"), kv_value("2")),
  });
  CheckResult result = check::check_linearizable(h, KvModel{});
  EXPECT_TRUE(result.linearizable) << result.error;
  EXPECT_EQ(result.partitions_checked, 2u);
}

TEST(Linearizability, ScanForcesGlobalModeAndChecksWholeStore) {
  History good = make_history({
      op(0, 1, 0, 10, Op::Result::Ok, put("a", "va"), kv_ok()),
      op(0, 2, 20, 30, Op::Result::Ok, put("b", "vb"), kv_ok()),
      op(0, 3, 40, 50, Op::Result::Ok, scan("", 10), kv_values({"va", "vb"})),
  });
  CheckResult result = check::check_linearizable(good, KvModel{});
  EXPECT_TRUE(result.linearizable) << result.error;
  EXPECT_EQ(result.partitions_checked, 1u);  // scan disables partitioning

  History bad = make_history({
      op(0, 1, 0, 10, Op::Result::Ok, put("a", "va"), kv_ok()),
      op(0, 2, 20, 30, Op::Result::Ok, put("b", "vb"), kv_ok()),
      op(0, 3, 40, 50, Op::Result::Ok, scan("", 10), kv_values({"vb", "va"})),
  });
  EXPECT_FALSE(check::check_linearizable(bad, KvModel{}).linearizable);
}

// ---------------------------------------------------------------------------
// Maybe-executed semantics: timeouts, open ops, ambivalent rejections
// ---------------------------------------------------------------------------

TEST(Linearizability, TimedOutWriteMayOrMayNotExecute) {
  for (auto output : {kv_value("v1"), kv_notfound()}) {
    History h = make_history({
        op(0, 1, 0, 10, Op::Result::Timeout, put("k", "v1")),
        op(1, 1, 20, 30, Op::Result::Ok, get("k"), output),
    });
    EXPECT_TRUE(check::check_linearizable(h, KvModel{}).linearizable);
  }
}

TEST(Linearizability, TimedOutWriteMayTakeEffectLate) {
  // The client gave up at t=10, but the write may land *after* v2: a
  // timeout does not constrain later operations.
  History h = make_history({
      op(0, 1, 0, 10, Op::Result::Timeout, put("k", "v1")),
      op(1, 1, 20, 30, Op::Result::Ok, put("k", "v2"), kv_ok()),
      op(1, 2, 40, 50, Op::Result::Ok, get("k"), kv_value("v1")),
  });
  CheckResult result = check::check_linearizable(h, KvModel{});
  EXPECT_TRUE(result.linearizable) << result.error;
}

TEST(Linearizability, OpenOpMayHaveExecuted) {
  History h = make_history({
      op(0, 1, 0, -1, Op::Result::Open, put("k", "v1")),
      op(1, 1, 20, 30, Op::Result::Ok, get("k"), kv_value("v1")),
  });
  EXPECT_TRUE(check::check_linearizable(h, KvModel{}).linearizable);
}

TEST(Linearizability, AmbivalentRejectionMayHaveExecuted) {
  // n-f rejects: the client aborted but does not know whether the op
  // executed (paper Sec. 5.3 ambivalence) — both futures are legal.
  for (auto output : {kv_value("v1"), kv_notfound()}) {
    History h = make_history({
        op(0, 1, 0, 10, Op::Result::Rejected, put("k", "v1"), {}, /*definitive=*/false),
        op(1, 1, 20, 30, Op::Result::Ok, get("k"), output),
    });
    EXPECT_TRUE(check::check_linearizable(h, KvModel{}).linearizable);
  }
}

// ---------------------------------------------------------------------------
// Mutations that MUST be flagged
// ---------------------------------------------------------------------------

TEST(Linearizability, FlagsLostWrite) {
  History h = make_history({
      op(0, 1, 0, 10, Op::Result::Ok, put("k", "v1"), kv_ok()),
      op(0, 2, 20, 30, Op::Result::Ok, get("k"), kv_notfound()),
  });
  CheckResult result = check::check_linearizable(h, KvModel{});
  EXPECT_FALSE(result.linearizable);
  EXPECT_FALSE(result.error.empty());
}

TEST(Linearizability, FlagsStaleRead) {
  // v1 was overwritten by v2 strictly before the read was invoked.
  History h = make_history({
      op(0, 1, 0, 10, Op::Result::Ok, put("k", "v1"), kv_ok()),
      op(0, 2, 20, 30, Op::Result::Ok, put("k", "v2"), kv_ok()),
      op(1, 1, 40, 50, Op::Result::Ok, get("k"), kv_value("v1")),
  });
  EXPECT_FALSE(check::check_linearizable(h, KvModel{}).linearizable);
}

TEST(Linearizability, FlagsDuplicatedExecution) {
  // One Add(+1) acknowledged once, but a later read observes it twice.
  app::CounterCommand add;
  add.op = app::CounterOp::Add;
  add.name = "n";
  add.delta = 1;
  app::CounterCommand read;
  read.op = app::CounterOp::Read;
  read.name = "n";
  auto value_bytes = [](std::int64_t v) {
    ByteWriter w;
    w.u64(static_cast<std::uint64_t>(v));
    return w.take();
  };
  History h = make_history({
      op(0, 1, 0, 10, Op::Result::Ok, add.encode(), value_bytes(1)),
      op(1, 1, 20, 30, Op::Result::Ok, read.encode(), value_bytes(2)),
  });
  EXPECT_FALSE(check::check_linearizable(h, CounterModel{}).linearizable);
}

TEST(Linearizability, FlagsExecutedAfterDefinitiveReject) {
  // All n replicas rejected the put — it must never execute. A read that
  // observes its value is a safety violation.
  History h = make_history({
      op(0, 1, 0, 10, Op::Result::Rejected, put("k", "v1"), {}, /*definitive=*/true),
      op(1, 1, 20, 30, Op::Result::Ok, get("k"), kv_value("v1")),
  });
  CheckResult result = check::check_linearizable(h, KvModel{});
  EXPECT_FALSE(result.linearizable);
}

TEST(Linearizability, FlagsWrongReadValue) {
  History h = make_history({
      op(0, 1, 0, 10, Op::Result::Ok, put("k", "v1"), kv_ok()),
      op(0, 2, 20, 30, Op::Result::Ok, get("k"), kv_value("v2")),
  });
  EXPECT_FALSE(check::check_linearizable(h, KvModel{}).linearizable);
}

TEST(Linearizability, FlagsReorderedNonOverlappingWrites) {
  // w(v1) completes before w(v2) starts; two later reads observing
  // v2 then v1 would require the writes in the other order.
  History h = make_history({
      op(0, 1, 0, 10, Op::Result::Ok, put("k", "v1"), kv_ok()),
      op(0, 2, 20, 30, Op::Result::Ok, put("k", "v2"), kv_ok()),
      op(1, 1, 40, 50, Op::Result::Ok, get("k"), kv_value("v2")),
      op(1, 2, 60, 70, Op::Result::Ok, get("k"), kv_value("v1")),
  });
  EXPECT_FALSE(check::check_linearizable(h, KvModel{}).linearizable);
}

// ---------------------------------------------------------------------------
// Plumbing
// ---------------------------------------------------------------------------

TEST(Linearizability, HistoryJsonRoundTripPreservesHash) {
  History h = make_history({
      op(0, 1, 0, 10, Op::Result::Ok, put("k", "v1"), kv_ok()),
      op(1, 1, 5, 15, Op::Result::Timeout, put("k", "v2")),
      op(2, 1, 20, 30, Op::Result::Rejected, put("k", "v3"), {}, /*definitive=*/true),
      op(3, 1, 25, -1, Op::Result::Open, get("k")),
  });
  History round = History::from_json(json::Value::parse(h.to_json().dump()));
  EXPECT_EQ(round, h);
  EXPECT_EQ(round.hash(), h.hash());
}

TEST(Linearizability, SearchBudgetReportsExplicitly) {
  // A budget of 1 state cannot prove anything: the checker must say so
  // rather than claim non-linearizability of a fine history.
  History h = make_history({
      op(0, 1, 0, 10, Op::Result::Ok, put("k", "v1"), kv_ok()),
      op(0, 2, 20, 30, Op::Result::Ok, get("k"), kv_value("v1")),
  });
  CheckResult result = check::check_linearizable(h, KvModel{}, /*max_states=*/1);
  EXPECT_FALSE(result.linearizable);
  EXPECT_NE(result.error.find("budget"), std::string::npos);
}

TEST(Linearizability, MakeModelSelectsByAppName) {
  EXPECT_NE(check::make_model("kv"), nullptr);
  EXPECT_NE(check::make_model("counter"), nullptr);
  EXPECT_EQ(check::make_model("nope"), nullptr);
}

}  // namespace
}  // namespace idem
