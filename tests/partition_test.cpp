// Network-partition scenarios: the classic SMR behaviours — a majority
// side keeps serving, a minority side stalls (but keeps rejecting!), and
// healing reconciles state — plus IDEM-specific behaviour of the
// rejection mechanism under partitions. All faults are expressed as
// declarative sim::FaultPlan schedules (see src/sim/fault_plan.hpp).
#include <gtest/gtest.h>

#include "sim/fault_plan.hpp"
#include "test_util.hpp"

namespace idem {
namespace {

using harness::Cluster;
using harness::Protocol;
using test::invoke_and_wait;
using test::put_cmd;
using test::test_cluster_config;

/// Arms `plan` and runs one tick so faults at t=0 fire before the test
/// starts sending (client sends happen synchronously at invoke()).
void arm(Cluster& cluster, sim::FaultPlan plan) {
  cluster.apply(plan);
  cluster.simulator().run_for(kMillisecond);
}

TEST(Partition, MajorityKeepsServing) {
  Cluster cluster(test_cluster_config(Protocol::Idem));
  // Replica 2 is cut off from its peers (but not from the client).
  arm(cluster, {sim::Fault::partition(0, {2}, {0, 1})});
  for (int i = 0; i < 5; ++i) {
    auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v" + std::to_string(i)),
                                   10 * kSecond);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  }
  // The isolated replica made no progress.
  EXPECT_EQ(cluster.idem_replica(2)->next_execute().value, 0u);
}

TEST(Partition, MinorityLeaderCannotCommit) {
  Cluster cluster(test_cluster_config(Protocol::Idem));
  // Isolate the leader (replica 0) from both followers; the client can
  // still reach everyone. The followers view-change among themselves and
  // continue; the old leader must never commit alone.
  arm(cluster, {sim::Fault::partition(0, {0}, {1, 2})});
  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 15 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  EXPECT_TRUE(cluster.idem_replica(1)->is_leader() || cluster.idem_replica(2)->is_leader());
  EXPECT_EQ(cluster.idem_replica(0)->next_execute().value, 0u);
}

TEST(Partition, HealedReplicaCatchesUp) {
  auto config = test_cluster_config(Protocol::Idem);
  config.reject_threshold = 2;  // small r_max: GC outruns the partition fast
  config.idem.checkpoint_interval = 8;
  Cluster cluster(config);
  arm(cluster, {sim::Fault::partition(0, {2}, {0, 1})});  // sticky
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k" + std::to_string(i), "v"))->kind,
              consensus::Outcome::Kind::Reply);
  }
  arm(cluster, {sim::Fault::heal(0)});  // fires at now (clamped)
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("post" + std::to_string(i), "v"))->kind,
              consensus::Outcome::Kind::Reply);
  }
  cluster.simulator().run_for(3 * kSecond);
  auto* healed = cluster.idem_replica(2);
  EXPECT_GT(healed->next_execute().value, 30u);
  EXPECT_EQ(healed->state_machine().snapshot(),
            cluster.idem_replica(0)->state_machine().snapshot());
}

TEST(Partition, IsolatedReplicasStillReject) {
  // The collaborative property under partitions: replicas cut off from
  // their peers still answer clients with rejections when saturated —
  // no coordination needed to say "not now".
  auto config = test_cluster_config(Protocol::Idem);
  config.reject_threshold = 0;  // always reject
  Cluster cluster(config);
  // Full replica-to-replica partition; clients reach everyone.
  arm(cluster, {
                   sim::Fault::partition(0, {0}, {1, 2}),
                   sim::Fault::partition(0, {1}, {2}),
               });

  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 5 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Rejected);
  EXPECT_EQ(outcome->rejects_seen, 3u);  // all three, despite total isolation
  EXPECT_TRUE(outcome->definitive_failure);
  // And quickly: rejection needs one round trip, not agreement.
  EXPECT_LT(outcome->latency(), 2 * kMillisecond);
}

TEST(Partition, ClientPartitionedFromMajorityStillLearnsViaRetry) {
  Cluster cluster(test_cluster_config(Protocol::Idem));
  // The client initially reaches only replica 2; the request still
  // executes (replica 2 accepts and forwards), and once the client link
  // heals the retransmission collects the cached reply.
  arm(cluster, {
                   sim::Fault::partition_one_way(0, {sim::fault_endpoint_client(0)}, {0, 1}),
                   sim::Fault::partition_one_way(0, {0}, {sim::fault_endpoint_client(0)}),
               });

  std::optional<consensus::Outcome> outcome;
  cluster.client(0).invoke(put_cmd("k", "v"),
                           [&](const consensus::Outcome& o) { outcome = o; });
  cluster.simulator().run_for(kSecond);
  // The request executed cluster-wide even though the client saw nothing
  // yet (the leader's replies are blocked).
  EXPECT_GE(cluster.idem_replica(0)->next_execute().value, 1u);

  cluster.apply({sim::Fault::heal(0)});
  cluster.simulator().run_while(
      [&] { return !outcome.has_value() && cluster.simulator().now() < 10 * kSecond; });
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
}

TEST(Partition, PaxosMajoritySideElectsAndServes) {
  Cluster cluster(test_cluster_config(Protocol::Paxos));
  arm(cluster, {sim::Fault::partition(0, {0}, {1, 2})});
  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 30 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  EXPECT_EQ(cluster.paxos_replica(0)->stats().executed, 0u);
}

TEST(Partition, FlappingLinkEventuallyConverges) {
  // The link to replica 2 flaps every 300 ms while traffic flows; when it
  // stabilizes, all replicas agree. One windowed partition per down-phase
  // replaces the old hand-scheduled partition/heal ping-pong.
  auto config = test_cluster_config(Protocol::Idem, /*clients=*/2, /*seed=*/9);
  Cluster cluster(config);
  test::ExecutionRecorder recorder(cluster);
  sim::FaultPlan flaps;
  for (int k = 0; k < 5; ++k) {
    flaps.add(sim::Fault::partition((2 * k + 1) * 300 * kMillisecond, {2}, {0, 1},
                                    300 * kMillisecond));
  }
  cluster.apply(flaps);
  for (int i = 0; i < 20; ++i) {
    for (std::size_t c = 0; c < 2; ++c) {
      auto outcome =
          invoke_and_wait(cluster, c, put_cmd("k" + std::to_string(i), "v"), 30 * kSecond);
      ASSERT_TRUE(outcome.has_value());
      ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
    }
  }
  cluster.apply({sim::Fault::heal(0)});
  cluster.simulator().run_for(3 * kSecond);
  recorder.expect_consistent();
}

}  // namespace
}  // namespace idem
