// Time-boxed end-to-end smoke of the real deployment: a 3-replica
// loopback cluster built from the unmodified IdemReplica, driven by the
// unmodified IdemClient over kernel TCP, serving a few hundred YCSB
// operations. Checks well-formed replies, engaged rejections under a tiny
// reject threshold, coherent cross-thread traces, and leak-free shutdown
// (the suite also runs under ASan and TSan in CI).
#include <gtest/gtest.h>

#include "consensus/addresses.hpp"
#include "real/cluster.hpp"
#include "real/load.hpp"

namespace idem {
namespace {

TEST(RealSmoke, ServesYcsbOverLoopbackTcp) {
  real::RealClusterConfig config;
  config.n = 3;
  config.f = 1;
  config.reject_threshold = 50;
  config.seed = 7;
  config.expected_clients = 4;
  config.preload = true;
  config.workload.record_count = 200;  // keep preload fast
  real::RealCluster cluster(config);
  cluster.start();

  real::LoadOptions load;
  load.clients = 4;
  load.warmup = 100 * kMillisecond;
  load.duration = 600 * kMillisecond;
  load.seed = 7;
  load.workload = config.workload;
  load.replicas = cluster.replica_addresses();
  load.client = cluster.client_config();
  load.epoch = cluster.epoch();
  real::LoadStats stats = real::run_load(load);

  // A few hundred operations completed, every reply decoded cleanly.
  EXPECT_GT(stats.replies, 200u);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
  // Nothing should be rejected this far below the threshold.
  EXPECT_EQ(stats.rejects, 0u);
  // Ops issued in the warmup may conclude inside the measure window, so
  // replies can exceed issued by at most one in-flight op per client.
  EXPECT_GE(stats.issued + load.clients, stats.replies);

  // The replicas agree on what happened: each accepted and executed the
  // operations (executed counts may differ only by in-flight requests).
  std::uint64_t max_executed = 0, min_executed = ~0ull;
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    core::ReplicaStats replica = cluster.replica_stats(i);
    EXPECT_GE(replica.executed, stats.replies) << "replica " << i;
    max_executed = std::max(max_executed, replica.executed);
    min_executed = std::min(min_executed, replica.executed);
  }
  EXPECT_LE(max_executed - min_executed, 64u);

  // No transport-level decode errors on a healthy loopback cluster.
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.transport_stats(i).decode_errors, 0u) << "replica " << i;
  }
  cluster.shutdown();
}

TEST(RealSmoke, RejectionsEngageUnderOverload) {
  real::RealClusterConfig config;
  config.n = 3;
  config.f = 1;
  config.reject_threshold = 1;  // tiny r: overload immediately
  config.seed = 13;
  config.expected_clients = 16;
  real::RealCluster cluster(config);
  cluster.start();

  real::LoadOptions load;
  load.clients = 16;
  load.duration = 600 * kMillisecond;
  load.seed = 13;
  load.replicas = cluster.replica_addresses();
  load.client = cluster.client_config();
  load.epoch = cluster.epoch();
  real::LoadStats stats = real::run_load(load);

  // Proactive rejection engaged, and rejected operations still concluded
  // (fast negative acknowledgement, not a timeout).
  EXPECT_GT(stats.rejects, 0u);
  EXPECT_GT(stats.replies, 0u);
  std::uint64_t rejected_total = 0;
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    rejected_total += cluster.replica_stats(i).rejected;
  }
  EXPECT_GT(rejected_total, 0u);
  cluster.shutdown();
}

TEST(RealSmoke, PerThreadTracesMergeIntoOneTimeline) {
  real::RealClusterConfig config;
  config.n = 3;
  config.f = 1;
  config.seed = 17;
  config.trace = true;
  real::RealCluster cluster(config);
  cluster.start();

  real::LoadOptions load;
  load.clients = 2;
  load.duration = 300 * kMillisecond;
  load.seed = 17;
  load.trace = true;
  load.replicas = cluster.replica_addresses();
  load.client = cluster.client_config();
  load.epoch = cluster.epoch();
  real::LoadStats stats = real::run_load(load);
  ASSERT_GT(stats.replies, 0u);
  cluster.shutdown();

  // Merge the three replica rings with the client-side ring: one timeline,
  // monotone in wall-clock time, containing both sides of the lifecycle.
  auto parts = cluster.trace_snapshots();
  parts.push_back(stats.trace);
  auto merged = obs::merge_trace_snapshots(std::move(parts));
  ASSERT_FALSE(merged.empty());
  bool saw_client_event = false, saw_replica_event = false;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (i > 0) EXPECT_GE(merged[i].at, merged[i - 1].at);
    if (merged[i].node >= consensus::kClientAddressBase) saw_client_event = true;
    if (merged[i].node < consensus::kClientAddressBase) saw_replica_event = true;
  }
  EXPECT_TRUE(saw_client_event);
  EXPECT_TRUE(saw_replica_event);
}

}  // namespace
}  // namespace idem
