// Tests for the Paxos baseline and its leader-based-rejection variant.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace idem {
namespace {

using harness::Cluster;
using harness::Protocol;
using test::get_cmd;
using test::invoke_and_wait;
using test::put_cmd;
using test::test_cluster_config;

TEST(Paxos, BasicPutGet) {
  Cluster cluster(test_cluster_config(Protocol::Paxos));
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k", "v"))->kind,
            consensus::Outcome::Kind::Reply);
  auto get = invoke_and_wait(cluster, 0, get_cmd("k"));
  ASSERT_EQ(get->kind, consensus::Outcome::Kind::Reply);
  EXPECT_EQ(app::KvResult::decode(get->result).values.at(0), "v");
}

TEST(Paxos, AllReplicasExecuteIdentically) {
  Cluster cluster(test_cluster_config(Protocol::Paxos, /*clients=*/3));
  test::ExecutionRecorder recorder(cluster);
  for (int round = 0; round < 10; ++round) {
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(invoke_and_wait(cluster, c, put_cmd("key" + std::to_string(c), "v"))->kind,
                consensus::Outcome::Kind::Reply);
    }
  }
  cluster.simulator().run_for(kSecond);
  recorder.expect_consistent();
  EXPECT_EQ(recorder.log(0).size(), 30u);
  EXPECT_EQ(recorder.log(1).size(), 30u);
}

TEST(Paxos, FollowersDropClientRequests) {
  Cluster cluster(test_cluster_config(Protocol::Paxos));
  // Block the client's link to the leader: the request reaches only the
  // followers, which ignore it; the client eventually fails over.
  cluster.network().block_link(consensus::client_address(ClientId{0}),
                               consensus::replica_address(ReplicaId{0}));
  auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 30 * kSecond);
  // The client cycles presumed leaders; with replica 0 unreachable it can
  // never succeed (followers drop), so it keeps retrying. Nothing must
  // execute in the meantime.
  EXPECT_FALSE(outcome.has_value());
  EXPECT_EQ(cluster.paxos_replica(1)->stats().executed, 0u);
}

TEST(Paxos, NoRejectionWithoutLBR) {
  auto config = test_cluster_config(Protocol::Paxos, /*clients=*/5);
  Cluster cluster(config);
  for (int i = 0; i < 5; ++i) {
    auto outcome = invoke_and_wait(cluster, std::size_t(i), put_cmd("k", "v"));
    ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  }
  EXPECT_EQ(cluster.paxos_replica(0)->stats().rejected, 0u);
}

TEST(PaxosLBR, LeaderRejectsAboveThreshold) {
  // A tiny threshold with 20 concurrent clients forces the leader to
  // reject the overflow while still serving some requests.
  auto config2 = test_cluster_config(Protocol::PaxosLBR, /*clients=*/20, /*seed=*/5);
  config2.reject_threshold = 1;
  Cluster busy(config2);
  std::size_t rejected = 0, replied = 0;
  std::size_t completed = 0;
  for (std::size_t c = 0; c < 20; ++c) {
    busy.client(c).invoke(put_cmd("k", "v"), [&](const consensus::Outcome& outcome) {
      ++completed;
      if (outcome.kind == consensus::Outcome::Kind::Rejected) ++rejected;
      if (outcome.kind == consensus::Outcome::Kind::Reply) ++replied;
    });
  }
  busy.simulator().run_while([&] { return completed < 20 && busy.simulator().now() < 30 * kSecond; });
  EXPECT_EQ(completed, 20u);
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(replied, 0u);
  EXPECT_EQ(busy.paxos_replica(0)->stats().rejected, rejected);
}

TEST(Paxos, LeaderCrashViewChangeAndClientFailover) {
  Cluster cluster(test_cluster_config(Protocol::Paxos));
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("a", "1"))->kind,
            consensus::Outcome::Kind::Reply);
  cluster.crash_replica(0);
  auto outcome = invoke_and_wait(cluster, 0, put_cmd("b", "2"), 30 * kSecond);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  EXPECT_TRUE(cluster.paxos_replica(1)->is_leader());

  // Subsequent operations go straight to the new leader (no fail-over).
  Time before = cluster.simulator().now();
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("c", "3"))->kind,
            consensus::Outcome::Kind::Reply);
  EXPECT_LT(cluster.simulator().now() - before, kSecond);
}

TEST(Paxos, FollowerCrashNoInterruption) {
  Cluster cluster(test_cluster_config(Protocol::Paxos));
  cluster.crash_replica(2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k", "v" + std::to_string(i)))->kind,
              consensus::Outcome::Kind::Reply);
  }
  EXPECT_EQ(cluster.paxos_replica(0)->view().value, 0u);
}

TEST(Paxos, HeartbeatsPreventSpuriousViewChange) {
  Cluster cluster(test_cluster_config(Protocol::Paxos));
  ASSERT_EQ(invoke_and_wait(cluster, 0, put_cmd("k", "v"))->kind,
            consensus::Outcome::Kind::Reply);
  cluster.simulator().run_for(10 * kSecond);  // idle
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.paxos_replica(i)->view().value, 0u) << "replica " << i;
  }
}

TEST(Paxos, ConsistentAfterViewChangeWithInflightRequests) {
  Cluster cluster(test_cluster_config(Protocol::Paxos, /*clients=*/2));
  test::ExecutionRecorder recorder(cluster);
  std::optional<consensus::Outcome> o1, o2;
  cluster.client(0).invoke(put_cmd("x", "1"), [&](const consensus::Outcome& o) { o1 = o; });
  cluster.client(1).invoke(put_cmd("y", "2"), [&](const consensus::Outcome& o) { o2 = o; });
  cluster.apply({sim::Fault::crash(cluster.simulator().now() + 100 * kMicrosecond, 0)});
  cluster.simulator().run_while([&] {
    return (!o1.has_value() || !o2.has_value()) && cluster.simulator().now() < 30 * kSecond;
  });
  ASSERT_TRUE(o1.has_value());
  ASSERT_TRUE(o2.has_value());
  EXPECT_EQ(o1->kind, consensus::Outcome::Kind::Reply);
  EXPECT_EQ(o2->kind, consensus::Outcome::Kind::Reply);
  cluster.simulator().run_for(kSecond);
  recorder.expect_consistent();
}

TEST(Paxos, DuplicateSuppressionOnRetry) {
  auto config = test_cluster_config(Protocol::Paxos);
  config.network.drop_probability = 0.3;
  config.seed = 17;
  Cluster cluster(config);
  test::ExecutionRecorder recorder(cluster);
  for (int i = 0; i < 10; ++i) {
    auto outcome = invoke_and_wait(cluster, 0, put_cmd("k", "v"), 60 * kSecond);
    ASSERT_TRUE(outcome.has_value());
    ASSERT_EQ(outcome->kind, consensus::Outcome::Kind::Reply);
  }
  cluster.network().set_drop_probability(0);
  cluster.simulator().run_for(5 * kSecond);
  // Exactly-once at every replica that executed the op at all; the Paxos
  // baseline has no state transfer, so a replica that fell behind during
  // a lossy view change may legitimately miss old instances.
  recorder.expect_consistent();
  for (std::uint64_t onr = 1; onr <= 10; ++onr) {
    RequestId id{ClientId{0}, OpNum{onr}};
    EXPECT_TRUE(recorder.executed_anywhere(id)) << to_string(id);
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_LE(recorder.count_executions(r, id), 1u) << "replica " << r << " " << to_string(id);
    }
  }
}

}  // namespace
}  // namespace idem
