// Unit tests for the common substrate: ids, codec, rng, histogram,
// time series.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "common/codec.hpp"
#include "common/histogram.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/timeseries.hpp"

namespace idem {
namespace {

// ---------------------------------------------------------------------------
// Ids
// ---------------------------------------------------------------------------

TEST(Ids, RequestIdOrdering) {
  RequestId a{ClientId{1}, OpNum{5}};
  RequestId b{ClientId{1}, OpNum{6}};
  RequestId c{ClientId{2}, OpNum{1}};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (RequestId{ClientId{1}, OpNum{5}}));
}

TEST(Ids, RequestIdHashDistinct) {
  std::unordered_set<RequestId> set;
  for (std::uint64_t cid = 0; cid < 100; ++cid) {
    for (std::uint64_t onr = 0; onr < 100; ++onr) {
      set.insert(RequestId{ClientId{cid}, OpNum{onr}});
    }
  }
  EXPECT_EQ(set.size(), 10'000u);
}

TEST(Ids, ViewNextAndLeaderRotation) {
  ViewId v{0};
  EXPECT_EQ(v.next().value, 1u);
  EXPECT_EQ(v.next().next().value, 2u);
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(Codec, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.str("hello");
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Codec, VarintBoundaries) {
  for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                          0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull}) {
    ByteWriter w;
    w.varint(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Codec, VarintSmallValuesAreOneByte) {
  ByteWriter w;
  w.varint(42);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Codec, TruncatedThrows) {
  ByteWriter w;
  w.u32(7);
  auto data = w.take();
  data.pop_back();
  ByteReader r(data);
  EXPECT_THROW(r.u32(), CodecError);
}

TEST(Codec, TruncatedStringThrows) {
  ByteWriter w;
  w.varint(100);  // length prefix promising more bytes than present
  ByteReader r(w.data());
  EXPECT_THROW(r.str(), CodecError);
}

TEST(Codec, HostileLengthPrefixNearOverflowThrows) {
  // A length prefix close to 2^64 made the old bounds check wrap:
  // pos_ + n overflowed and the read passed, handing out-of-bounds memory
  // to bytes()/str(). The check must reject any n beyond the remainder.
  for (std::uint64_t hostile : {0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFEull,
                                0x8000000000000000ull, 0xFFFFFFFFFFFFull}) {
    ByteWriter w;
    w.u8(5);  // leading byte so pos_ > 0 when the length is read
    w.varint(hostile);
    ByteReader r(w.data());
    (void)r.u8();
    EXPECT_THROW(r.bytes(), CodecError) << "n=" << hostile;
    ByteReader r2(w.data());
    (void)r2.u8();
    EXPECT_THROW(r2.str(), CodecError) << "n=" << hostile;
  }
}

TEST(Codec, HostileLengthOnePastEndThrows) {
  ByteWriter w;
  w.varint(9);  // promises 9 bytes
  w.u64(0);     // provides 8
  ByteReader r(w.data());
  EXPECT_THROW(r.bytes(), CodecError);
}

TEST(Codec, ExactLengthAtEndSucceeds) {
  ByteWriter w;
  w.varint(8);
  w.u64(0x1122334455667788ull);
  ByteReader r(w.data());
  auto out = r.bytes();
  EXPECT_EQ(out.size(), 8u);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Codec, OverlongVarintThrows) {
  std::vector<std::byte> data(11, std::byte{0x80});  // never terminates
  ByteReader r(data);
  EXPECT_THROW(r.varint(), CodecError);
}

TEST(Codec, WriterReserveAndBulkAppendsMatchByteLayout) {
  // The bulk/memcpy append paths must produce the identical little-endian
  // layout as the byte-at-a-time ones (wire compatibility).
  ByteWriter w;
  w.reserve(64);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.str("abc");
  const auto& buf = w.data();
  ASSERT_EQ(buf.size(), 2u + 4u + 8u + 1u + 3u);
  EXPECT_EQ(buf[0], std::byte{0xEF});
  EXPECT_EQ(buf[1], std::byte{0xBE});
  EXPECT_EQ(buf[2], std::byte{0xEF});
  EXPECT_EQ(buf[3], std::byte{0xBE});
  EXPECT_EQ(buf[4], std::byte{0xAD});
  EXPECT_EQ(buf[5], std::byte{0xDE});
  EXPECT_EQ(buf[6], std::byte{0xEF});
  EXPECT_EQ(buf[13], std::byte{0x01});
  EXPECT_EQ(buf[14], std::byte{3});  // varint length of "abc"
  EXPECT_EQ(buf[15], std::byte{'a'});
}

TEST(Codec, RequestIdRoundTrip) {
  RequestId id{ClientId{77}, OpNum{123456}};
  ByteWriter w;
  w.request_id(id);
  ByteReader r(w.data());
  EXPECT_EQ(r.request_id(), id);
}

TEST(Codec, BytesRoundTrip) {
  std::vector<std::byte> payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = std::byte(i & 0xFF);
  ByteWriter w;
  w.bytes(payload);
  ByteReader r(w.data());
  EXPECT_EQ(r.bytes(), payload);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeedAndStream) {
  Rng a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(42, 7), b(42, 8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(1, 1);
  for (int i = 0; i < 10'000; ++i) {
    auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntCoversWholeRange) {
  Rng rng(1, 2);
  std::unordered_set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3, 3);
  for (int i = 0; i < 10'000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(4, 4);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(5, 5);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitMixIsStable) {
  // Reference values pin the PRF across platforms: the acceptance test
  // depends on identical PRF output at every replica.
  EXPECT_EQ(splitmix64(0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(splitmix64(1), 0x910A2DEC89025CC1ull);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, ExactSmallValues) {
  Histogram h;
  h.record(5);
  h.record(5);
  h.record(10);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 10);
  EXPECT_NEAR(h.mean(), 20.0 / 3, 1e-9);
}

TEST(Histogram, QuantileBoundedRelativeError) {
  Histogram h;
  for (int i = 1; i <= 100'000; ++i) h.record(i);
  // p50 ~ 50000, p99 ~ 99000; bucket error is ~3% at this magnitude.
  EXPECT_NEAR(static_cast<double>(h.p50()), 50'000, 50'000 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.p99()), 99'000, 99'000 * 0.04);
}

TEST(Histogram, StddevMatchesClosedForm) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(100);
  EXPECT_NEAR(h.stddev(), 0.0, 1e-9);
  h.record(200);
  EXPECT_GT(h.stddev(), 0.0);
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a, b;
  a.record(10);
  b.record(1000);
  b.record(1000000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000000);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
}

TEST(Histogram, LargeValues) {
  Histogram h;
  h.record(3'600'000'000'000ll);  // one hour in ns
  auto q = h.quantile(1.0);
  EXPECT_GE(q, 3'600'000'000'000ll);
  EXPECT_LE(static_cast<double>(q), 3'600'000'000'000.0 * 1.04);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(10);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0);
}

TEST(Histogram, SingleValueQuantilesCollapse) {
  // One sample: every quantile lands in its bucket, min == max == value.
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.quantile(0.0), h.quantile(1.0));
  EXPECT_EQ(h.p50(), h.p999());
  EXPECT_GE(h.p50(), 42);
}

TEST(Histogram, SaturatedBucketCountsDoNotOverflowQuantiles) {
  // A single bucket holding ~1e9 samples must not wrap the cumulative
  // scan; small values are bucketed exactly, so quantiles stay at 7.
  Histogram h;
  h.record_n(7, 1'000'000'000ull);
  EXPECT_EQ(h.count(), 1'000'000'000ull);
  EXPECT_EQ(h.p50(), 7);
  EXPECT_EQ(h.p999(), 7);
}

TEST(Histogram, DeltaOfIdenticalStatesIsEmpty) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1000 + i);
  Histogram d = h.delta(h);
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.quantile(0.5), 0);
  EXPECT_EQ(d.mean(), 0.0);
}

TEST(Histogram, DeltaFromEmptyEarlierIsTheFullDistribution) {
  Histogram h, empty;
  h.record(10);
  h.record(10'000);
  Histogram d = h.delta(empty);
  EXPECT_EQ(d.count(), 2u);
  EXPECT_EQ(d.p50(), h.p50());
  EXPECT_EQ(d.p999(), h.p999());
}

TEST(Histogram, DeltaIsolatesTheWindow) {
  // Old samples at 100 ns, window samples at 10 us: the delta must see
  // only the window's distribution, not the cumulative mixture.
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(100);
  Histogram earlier = h;
  for (int i = 0; i < 200; ++i) h.record(10'000);
  Histogram window = h.delta(earlier);
  EXPECT_EQ(window.count(), 200u);
  EXPECT_NEAR(static_cast<double>(window.p50()), 10'000, 10'000 * 0.04);
  EXPECT_NEAR(window.mean(), 10'000, 10'000 * 0.04);
  // min/max are bucket-edge approximations of the window's extremes; they
  // must bracket the only recorded window value.
  EXPECT_GT(window.min(), 100);
  EXPECT_LE(static_cast<double>(window.min()), 10'000);
  EXPECT_GE(static_cast<double>(window.max()), 10'000 * 0.96);
}

// ---------------------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------------------

TEST(TimeSeries, BucketsByWindow) {
  TimeSeries ts(100 * kMillisecond);
  ts.add(10 * kMillisecond, 1.0);
  ts.add(50 * kMillisecond, 3.0);
  ts.add(150 * kMillisecond, 5.0);
  auto rows = ts.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_NEAR(rows[0].mean(), 2.0, 1e-9);
  EXPECT_EQ(rows[1].count, 1u);
  EXPECT_NEAR(rows[1].value_min, 5.0, 1e-9);
}

TEST(TimeSeries, EmptyWindowsIncluded) {
  TimeSeries ts(kSecond);
  ts.add(0, 1.0);
  ts.add(5 * kSecond, 1.0);
  auto rows = ts.rows();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[2].count, 0u);
}

TEST(TimeSeries, RateComputation) {
  TimeSeries ts(kSecond);
  for (int i = 0; i < 500; ++i) ts.add(i * 2 * kMillisecond);
  auto rows = ts.rows();
  ASSERT_FALSE(rows.empty());
  EXPECT_NEAR(rows[0].rate(kSecond), 500.0, 1e-9);
}

TEST(TimeSeries, NegativeTimeClamped) {
  TimeSeries ts(kSecond);
  ts.add(-5, 1.0);
  EXPECT_EQ(ts.rows()[0].count, 1u);
}

}  // namespace
}  // namespace idem
