// Property-based tests: randomized workloads swept across seeds, loss
// rates, protocols and fault patterns (parameterized gtest). Each run
// checks the fundamental invariants:
//   - Safety: all replicas execute the same requests in the same order.
//   - Exactly-once: no (cid, onr) executes twice at any replica.
//   - Client liveness (Thm 6.3): every operation ends in success,
//     rejection, or timeout — and with retries, eventually succeeds.
//   - Monotonicity: a client's executed operation numbers are gapless.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "test_util.hpp"

namespace idem {
namespace {

using harness::Cluster;
using harness::Protocol;

struct Scenario {
  Protocol protocol;
  std::uint64_t seed;
  double drop;
  int crash_replica;  // -1 = none; else crashed mid-run
  std::size_t clients;

  friend std::ostream& operator<<(std::ostream& os, const Scenario& s) {
    os << harness::protocol_name(s.protocol) << "_seed" << s.seed << "_drop"
       << static_cast<int>(s.drop * 100) << "_crash" << s.crash_replica << "_c" << s.clients;
    return os;
  }
};

class ProtocolProperties : public ::testing::TestWithParam<Scenario> {};

/// Drives `ops_per_client` operations per client with automatic reissue
/// on rejection, then verifies all invariants.
TEST_P(ProtocolProperties, SafetyAndLiveness) {
  const Scenario& scenario = GetParam();
  auto config = test::test_cluster_config(scenario.protocol, scenario.clients, scenario.seed);
  config.network.drop_probability = scenario.drop;
  config.reject_threshold = 5;  // small: rejection paths get exercised
  Cluster cluster(config);
  test::ExecutionRecorder recorder(cluster);

  const std::uint64_t ops_per_client = 8;
  std::vector<std::uint64_t> successes(scenario.clients, 0);
  std::vector<std::uint64_t> outcomes_seen(scenario.clients, 0);

  // Each client loops: issue, and on rejection back off briefly and retry
  // (a fresh operation number — semi-autonomous clients move on).
  std::function<void(std::size_t)> issue = [&](std::size_t c) {
    if (successes[c] >= ops_per_client) return;
    app::KvCommand cmd;
    cmd.op = app::KvOp::Put;
    cmd.key = "c" + std::to_string(c);
    cmd.value = "v" + std::to_string(outcomes_seen[c]);
    cluster.client(c).invoke(cmd.encode(), [&, c](const consensus::Outcome& outcome) {
      ++outcomes_seen[c];
      if (outcome.kind == consensus::Outcome::Kind::Reply) ++successes[c];
      Duration delay =
          outcome.kind == consensus::Outcome::Kind::Reply ? 0 : 20 * kMillisecond;
      cluster.simulator().schedule_after(delay, [&, c] { issue(c); });
    });
  };
  for (std::size_t c = 0; c < scenario.clients; ++c) issue(c);

  if (scenario.crash_replica >= 0) {
    cluster.apply({sim::Fault::crash(300 * kMillisecond, scenario.crash_replica)});
  }

  // Run until every client finished its quota (liveness) or a generous
  // deadline expires.
  cluster.simulator().run_while([&] {
    if (cluster.simulator().now() >= 120 * kSecond) return false;
    for (std::size_t c = 0; c < scenario.clients; ++c) {
      if (successes[c] < ops_per_client) return true;
    }
    return false;
  });

  for (std::size_t c = 0; c < scenario.clients; ++c) {
    EXPECT_EQ(successes[c], ops_per_client)
        << "client " << c << " did not finish (liveness violation)";
  }

  // Quiesce and verify safety.
  cluster.network().set_drop_probability(0);
  cluster.simulator().run_for(5 * kSecond);
  recorder.expect_consistent();

  // Exactly-once per replica, and executed op numbers have no gaps below
  // the per-client maximum.
  for (std::size_t r = 0; r < config.n; ++r) {
    if (scenario.crash_replica == static_cast<int>(r)) continue;
    std::map<std::uint64_t, std::map<std::uint64_t, int>> executed;  // cid -> onr -> count
    for (const auto& [sqn, id] : recorder.log(r)) {
      executed[id.cid.value][id.onr.value] += 1;
    }
    for (const auto& [cid, ops] : executed) {
      for (const auto& [onr, count] : ops) {
        EXPECT_EQ(count, 1) << "replica " << r << " executed c" << cid << "#" << onr
                            << " more than once";
      }
    }
  }
}

std::vector<Scenario> make_scenarios() {
  std::vector<Scenario> scenarios;
  // Clean runs across protocols and seeds.
  for (Protocol protocol : {Protocol::Idem, Protocol::Paxos, Protocol::Smart}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      scenarios.push_back({protocol, seed, 0.0, -1, 4});
    }
  }
  // Lossy networks.
  for (Protocol protocol : {Protocol::Idem, Protocol::Paxos, Protocol::Smart}) {
    for (double drop : {0.05, 0.15}) {
      scenarios.push_back({protocol, 11, drop, -1, 3});
    }
  }
  // Crashes (leader = replica 0 and follower = replica 2), with and
  // without loss. The SMaRt baseline has no view change, so only
  // follower crashes for it.
  scenarios.push_back({Protocol::Idem, 21, 0.0, 0, 3});
  scenarios.push_back({Protocol::Idem, 22, 0.0, 2, 3});
  scenarios.push_back({Protocol::Idem, 23, 0.05, 0, 3});
  scenarios.push_back({Protocol::Idem, 24, 0.05, 2, 3});
  scenarios.push_back({Protocol::Paxos, 25, 0.0, 0, 3});
  scenarios.push_back({Protocol::Paxos, 26, 0.0, 2, 3});
  scenarios.push_back({Protocol::Paxos, 27, 0.05, 0, 3});
  scenarios.push_back({Protocol::Smart, 28, 0.0, 2, 3});
  // IDEM variants.
  scenarios.push_back({Protocol::IdemNoAQM, 31, 0.0, -1, 4});
  scenarios.push_back({Protocol::IdemNoAQM, 32, 0.05, 0, 3});
  scenarios.push_back({Protocol::IdemNoPR, 33, 0.0, -1, 4});
  return scenarios;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolProperties, ::testing::ValuesIn(make_scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           std::ostringstream os;
                           os << info.param;
                           std::string name = os.str();
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Parameterized acceptance-test property: for any load level, the AQM
// verdicts of two replicas with the same seed agree on every request.
// ---------------------------------------------------------------------------

class AqmUnanimity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AqmUnanimity, SameSeedSameVerdict) {
  const std::size_t active = GetParam();
  core::AqmPrioritized::Params params;
  params.group_count = 4;
  params.prf_seed = 77;
  core::AqmPrioritized a(params), b(params);
  core::AcceptanceContext ctx;
  ctx.reject_threshold = 50;
  ctx.active_requests = active;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    RequestId id{ClientId{i % 180}, OpNum{i}};
    std::span<const std::byte> no_command;
    EXPECT_EQ(a.accept(id, no_command, ctx), b.accept(id, no_command, ctx));
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, AqmUnanimity,
                         ::testing::Values(0, 10, 29, 30, 35, 40, 45, 49, 50, 60));

// ---------------------------------------------------------------------------
// Parameterized codec property: random messages round-trip for any seed.
// ---------------------------------------------------------------------------

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomRequestsRoundTrip) {
  Rng rng(GetParam(), 99);
  for (int i = 0; i < 200; ++i) {
    msg::Request request;
    request.id = RequestId{ClientId{rng.next_u64() % 10000}, OpNum{rng.next_u64() % 10000}};
    auto len = static_cast<std::size_t>(rng.uniform_int(0, 2048));
    request.command.resize(len);
    for (auto& b : request.command) b = static_cast<std::byte>(rng.next_u32() & 0xFF);
    auto decoded = msg::decode(request.encode());
    const auto* typed = dynamic_cast<const msg::Request*>(decoded.get());
    ASSERT_NE(typed, nullptr);
    EXPECT_EQ(typed->id, request.id);
    EXPECT_EQ(typed->command, request.command);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace idem
