// Sharded real deployment: multiple real::RealCluster groups in one
// process, the sharded load generator's router path over kernel TCP, a
// live split driven from the controller thread, and the aggregated admin
// surface (group-labelled /metrics, per-group /stats sections).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "check/linearizability.hpp"
#include "shard/load.hpp"
#include "shard/real_cluster.hpp"

namespace idem::shard {
namespace {

/// One blocking HTTP/1.0 exchange against 127.0.0.1:port; returns the
/// full response (head + body), empty on connect failure.
std::string http_get(std::uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return {};
  }
  (void)!::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

ShardedRealConfig small_config(std::size_t groups) {
  ShardedRealConfig config;
  config.groups = groups;
  config.base.n = 3;
  config.base.f = 1;
  config.base.seed = 11;
  return config;
}

ShardedLoadOptions load_options(ShardedRealCluster& cluster, std::size_t clients,
                                Duration duration) {
  ShardedLoadOptions options;
  options.clients = clients;
  options.duration = duration;
  options.seed = 23;
  options.groups = cluster.group_addresses();
  options.map = cluster.map();
  options.router.map_source = [&cluster] { return cluster.map(); };
  options.workload.record_count = 200;
  options.workload.value_size = 16;
  // Short backoff: test spans are fractions of a second.
  options.backoff_min = kMillisecond;
  options.backoff_max = 5 * kMillisecond;
  return options;
}

TEST(ShardedReal, TwoGroupsServeTheFullKeyspace) {
  ShardedRealCluster cluster(small_config(2));
  cluster.start();

  const auto stats = run_sharded_load(load_options(cluster, 4, 300 * kMillisecond));
  EXPECT_GT(stats.load.replies, 20u);
  EXPECT_EQ(stats.router.redirect_drops, 0u);
  // Fresh map: no redirects, both groups admitted traffic.
  EXPECT_EQ(stats.router.redirects, 0u);
  EXPECT_GT(cluster.gate(0).stats().admitted, 0u);
  EXPECT_GT(cluster.gate(1).stats().admitted, 0u);
}

TEST(ShardedReal, StaleClientMapRedirectsAndRecovers) {
  ShardedRealCluster cluster(small_config(2));
  cluster.start();

  // Capture the epoch-1 map, then swap ownership of the lower half so
  // the load generator starts stale.
  ShardedLoadOptions options = load_options(cluster, 4, 400 * kMillisecond);
  const std::uint64_t mid = options.map.entries()[1].begin;
  cluster.publish(cluster.map().with_range_moved(0, mid, 1));

  const auto stats = run_sharded_load(options);
  EXPECT_GT(stats.load.replies, 20u);
  EXPECT_GT(stats.router.redirects, 0u);
  EXPECT_GT(stats.router.map_refreshes, 0u);
  EXPECT_EQ(stats.router.redirect_drops, 0u);

  // The redirecting group counted its WrongShard turn-aways.
  std::uint64_t wrong_shard = 0;
  for (std::size_t g = 0; g < cluster.groups(); ++g) {
    for (std::size_t i = 0; i < cluster.group(g).n(); ++i) {
      wrong_shard += cluster.group(g).replica_stats(i).wrong_shard;
    }
  }
  EXPECT_GT(wrong_shard, 0u);
}

TEST(ShardedReal, LiveShardSplitIsLinearizable) {
  ShardedRealConfig config = small_config(2);
  ShardedRealCluster cluster(config);
  // Group 0 owns everything at first; group 1 idles until the split.
  cluster.publish(cluster.map().with_range_moved(0, 0, 0));
  cluster.start();

  ShardedLoadOptions options = load_options(cluster, 3, 900 * kMillisecond);
  options.map = cluster.map();
  options.record_history = true;
  options.workload.record_count = 50;

  ShardedLoadStats stats;
  std::thread load([&] { stats = run_sharded_load(options); });
  // Let the load establish itself, then migrate the upper half of the
  // hash space to group 1 while operations are in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  const bool split = cluster.run_split(1ull << 63, 0, 0, 1, 5 * kSecond);
  load.join();

  ASSERT_TRUE(split);
  EXPECT_EQ(cluster.map().epoch(), 3u);
  EXPECT_GT(stats.load.replies, 20u);
  // Post-flip traffic reached the new owner.
  EXPECT_GT(cluster.gate(1).stats().admitted, 0u);
  EXPECT_GT(stats.router.redirects, 0u);

  const auto result = check::check_linearizable(stats.history, check::KvModel{});
  EXPECT_TRUE(result.linearizable) << result.error;
}

TEST(ShardedReal, AggregatedAdminServesGroupLabelledTelemetry) {
  ShardedRealConfig config = small_config(2);
  config.admin = true;
  ShardedRealCluster cluster(config);
  cluster.start();
  ASSERT_NE(cluster.admin_port(), 0);

  (void)run_sharded_load(load_options(cluster, 2, 200 * kMillisecond));

  const std::string metrics =
      http_get(cluster.admin_port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("group=\"0\""), std::string::npos);
  EXPECT_NE(metrics.find("group=\"1\""), std::string::npos);
  EXPECT_NE(metrics.find("idem_replies"), std::string::npos);

  const std::string stats = http_get(cluster.admin_port(), "GET /stats HTTP/1.0\r\n\r\n");
  EXPECT_NE(stats.find("\"per_group\""), std::string::npos);
  EXPECT_NE(stats.find("\"map_epoch\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"admitted\""), std::string::npos);
}

}  // namespace
}  // namespace idem::shard
