// trace_merge: stitching per-process Chrome trace exports onto one
// wall-clock timeline. Exercises the real binary (TRACE_MERGE_BIN, wired
// in tests/CMakeLists.txt) against documents produced by the real
// exporter, the same pipeline as idem_server/idem_client --trace-out.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/reject_reason.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"

namespace idem::obs {
namespace {

std::string write_export(const std::string& path, const TraceRecorder& recorder,
                         const ChromeTraceMeta& meta) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  write_chrome_trace(f, recorder.snapshot(), meta);
  std::fclose(f);
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int run_merge(const std::string& args) {
  int status = std::system((std::string(TRACE_MERGE_BIN) + " " + args + " > /dev/null 2>&1").c_str());
  return WEXITSTATUS(status);
}

TEST(TraceMerge, StitchesProcessesOntoOneWallClock) {
  const std::string dir = ::testing::TempDir();
  // Server process: anchor at 1 s; one accepted+executed lifecycle.
  TraceRecorder server;
  RequestId id{ClientId{1}, OpNum{1}};
  server.record(1'000, TraceEventKind::AcceptVerdict, 0, id, pack_accept_verdict(true, RejectReason::None));
  server.record(5'000, TraceEventKind::Executed, 0, id, 7);
  write_export(dir + "tm_server.json", server,
               ChromeTraceMeta{"idem_server r0", 1'000'000'000});

  // Client process started 0.5 s later: its events must shift +500000 us.
  TraceRecorder client;
  client.record(1'000, TraceEventKind::RequestIssued, 1'000'001, id);
  client.record(2'000, TraceEventKind::RequestOutcome, 1'000'001, id, 0);
  write_export(dir + "tm_client.json", client,
               ChromeTraceMeta{"idem_client c0", 1'500'000'000});

  const std::string merged_path = dir + "tm_merged.json";
  ASSERT_EQ(run_merge("-o " + merged_path + " " + dir + "tm_server.json " + dir +
                      "tm_client.json"),
            0);

  std::string merged = slurp(merged_path);
  // One document, both processes' tracks, client timestamps rebased onto
  // the earliest anchor.
  EXPECT_NE(merged.find("\"merged_from\":2"), std::string::npos);
  EXPECT_NE(merged.find("\"base_anchor_ns\":1000000000"), std::string::npos);
  EXPECT_NE(merged.find("idem_server r0: "), std::string::npos);
  EXPECT_NE(merged.find("idem_client c0: "), std::string::npos);
  EXPECT_NE(merged.find("500001"), std::string::npos);  // 1 us + 500000 us shift
  EXPECT_NE(merged.find("\"ts\":1"), std::string::npos);  // server events unshifted
}

TEST(TraceMerge, AnchorlessInputPassesThroughUnshifted) {
  const std::string dir = ::testing::TempDir();
  TraceRecorder server;
  RequestId id{ClientId{2}, OpNum{1}};
  server.record(3'000, TraceEventKind::AcceptVerdict, 0, id, pack_accept_verdict(true, RejectReason::None));
  server.record(4'000, TraceEventKind::Executed, 0, id, 1);
  write_export(dir + "tm_anchored.json", server,
               ChromeTraceMeta{"idem_server r0", 2'000'000'000});

  // Sim-style export: no meta at all.
  TraceRecorder sim;
  sim.record(9'000, TraceEventKind::RequestIssued, 1'000'000, id);
  sim.record(9'500, TraceEventKind::RequestOutcome, 1'000'000, id, 0);
  std::FILE* f = std::fopen((dir + "tm_sim.json").c_str(), "w");
  ASSERT_NE(f, nullptr);
  write_chrome_trace(f, sim.snapshot());
  std::fclose(f);

  const std::string merged_path = dir + "tm_merged2.json";
  ASSERT_EQ(run_merge("-o " + merged_path + " " + dir + "tm_anchored.json " + dir +
                      "tm_sim.json"),
            0);
  std::string merged = slurp(merged_path);
  // The anchorless document's timestamps are taken as already aligned.
  EXPECT_NE(merged.find("\"ts\":9"), std::string::npos);
}

TEST(TraceMerge, UsageErrorsExitTwo) {
  EXPECT_EQ(run_merge(""), 2);
  EXPECT_EQ(run_merge("-o /tmp/tm_out.json"), 2);  // fewer than two inputs
}

TEST(TraceMerge, MalformedInputExitsOne) {
  const std::string dir = ::testing::TempDir();
  const std::string bad = dir + "tm_bad.json";
  std::FILE* f = std::fopen(bad.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"notATrace\": true}", f);
  std::fclose(f);
  EXPECT_EQ(run_merge("-o " + dir + "tm_out.json " + bad + " " + bad), 1);
}

}  // namespace
}  // namespace idem::obs
